"""Wire codecs for :class:`~repro.sim.message.Message`.

The protocol layer exchanges rich Python values — nested tuples, dicts with
integer keys (ring knowledge maps), frozensets (suspect lists), and the
:data:`~repro.consensus.ec_consensus.NULL` estimate sentinel.  The simulator
passes them by reference; a real network needs bytes.  The codec round-trips
every payload shape the library's protocols produce **exactly** (tuples stay
tuples, int keys stay ints, ``NULL`` stays the singleton), so component code
runs unchanged on both substrates.

The structural transform — the tagged recursion into JSON-safe shape — is
:mod:`repro.obs.encode`, shared with the JSONL trace files (one transform,
one set of tags, on the wire and on disk).  This module adds the message
envelope and the pluggable byte serializers.  :class:`JsonCodec` is the
dependency-free baseline; :class:`MsgpackCodec` speaks the msgpack wire
format through the C :mod:`msgpack` extension when the host image ships it
and through the in-repo :mod:`repro.net.mpack` fallback otherwise — both
produce interchangeable canonical bytes, so mixed clusters agree.  Nothing
is ever installed; the image is the source of truth for which
implementation backs the format.

Broadcast-heavy senders use :meth:`Codec.encode_message_batch`: one
payload/envelope serialization shared across every destination, with only
the per-destination field re-encoded — the batching layer's "encode once
per instance, not once per command" contract extended down to frames.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs.encode import EncodeError, from_jsonable, to_jsonable
from ..sim.message import Message
from . import mpack

__all__ = [
    "CodecError",
    "Codec",
    "JsonCodec",
    "MsgpackCodec",
    "default_codec",
    "msgpack_extension_available",
    "wire_preferences",
]


class CodecError(Exception):
    """A payload could not be encoded, or bytes could not be decoded."""


def _to_wire(obj: Any) -> Any:
    try:
        return to_jsonable(obj)
    except EncodeError as exc:
        raise CodecError(str(exc)) from exc


def _from_wire(obj: Any) -> Any:
    try:
        return from_jsonable(obj)
    except EncodeError as exc:
        raise CodecError(str(exc)) from exc


class Codec:
    """Base codec: structural transform + a pluggable byte serializer.

    Subclasses provide :meth:`_dumps` / :meth:`_loads`; everything else —
    the tagged transform and the message envelope — is shared.
    """

    name = "abstract"

    # ------------------------------------------------------------- subclass
    def _dumps(self, obj: Any) -> bytes:
        raise NotImplementedError

    def _loads(self, data: bytes) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------- payloads
    def encode_payload(self, payload: Any) -> bytes:
        """Serialize one protocol payload."""
        return self._dumps(_to_wire(payload))

    def decode_payload(self, data: bytes) -> Any:
        """Inverse of :meth:`encode_payload`."""
        return _from_wire(self._loads(data))

    # ------------------------------------------------------------- messages
    def encode_message(self, msg: Message) -> bytes:
        """Serialize a full message envelope (src/dst/channel/payload/...)."""
        envelope = {
            "s": msg.src,
            "d": msg.dst,
            "c": msg.channel,
            "p": _to_wire(msg.payload),
            "t": msg.send_time,
            "g": msg.tag,
            "r": msg.round,
        }
        return self._dumps(envelope)

    def encode_message_batch(self, msgs: Sequence[Message]) -> List[bytes]:
        """Serialize same-content messages that differ only in ``dst``.

        The caller guarantees every message shares src/channel/payload/
        send_time/tag/round; subclasses exploit that to run the structural
        transform and payload serialization once.  The base implementation
        just loops — correct for any codec, fast for none.
        """
        return [self.encode_message(msg) for msg in msgs]

    def decode_message(self, data: bytes) -> Message:
        """Inverse of :meth:`encode_message`."""
        try:
            env = self._loads(data)
            return Message(
                src=int(env["s"]),
                dst=int(env["d"]),
                channel=str(env["c"]),
                payload=_from_wire(env["p"]),
                send_time=float(env["t"]),
                tag=env.get("g"),
                round=env.get("r"),
            )
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"undecodable message frame: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class JsonCodec(Codec):
    """JSON bytes; dependency-free and human-greppable on the wire."""

    name = "json"

    def _dumps(self, obj: Any) -> bytes:
        try:
            return json.dumps(obj, separators=(",", ":"), allow_nan=False).encode()
        except (TypeError, ValueError) as exc:
            raise CodecError(f"not JSON-serializable: {exc}") from exc

    def _loads(self, data: bytes) -> Any:
        try:
            return json.loads(data.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CodecError(f"not valid JSON: {exc}") from exc

    def encode_message_batch(self, msgs: Sequence[Message]) -> List[bytes]:
        if len(msgs) < 2:
            return [self.encode_message(msg) for msg in msgs]
        head = msgs[0]
        shared = self._dumps(
            {
                "s": head.src,
                "c": head.channel,
                "p": _to_wire(head.payload),
                "t": head.send_time,
                "g": head.tag,
                "r": head.round,
            }
        )
        # Splice the per-destination field into the shared envelope: the
        # serializer emits '{"s":...}', and '{"d":N,' + rest is equally
        # valid JSON with the same keys.
        tail = shared[1:]
        return [b'{"d":%d,' % msg.dst + tail for msg in msgs]


class MsgpackCodec(Codec):
    """msgpack bytes — smaller and faster than JSON.

    Backed by the C :mod:`msgpack` extension when importable
    (``impl == "ext"``), by :mod:`repro.net.mpack` otherwise
    (``impl == "pure"``).  Both write canonical msgpack, so frames are
    interchangeable across hosts regardless of which backs each end.
    """

    name = "msgpack"

    def __init__(self) -> None:
        try:
            import msgpack  # type: ignore[import-not-found]
        except ImportError:
            self._msgpack = None
            self.impl = "pure"
        else:
            self._msgpack = msgpack
            self.impl = "ext"

    def _dumps(self, obj: Any) -> bytes:
        try:
            if self._msgpack is not None:
                return self._msgpack.packb(obj, use_bin_type=True)
            return mpack.packb(obj)
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"not msgpack-serializable: {exc}") from exc

    def _loads(self, data: bytes) -> Any:
        try:
            if self._msgpack is not None:
                return self._msgpack.unpackb(
                    data, raw=False, strict_map_key=False
                )
            return mpack.unpackb(data)
        except Exception as exc:
            raise CodecError(f"not valid msgpack: {exc}") from exc

    def encode_message_batch(self, msgs: Sequence[Message]) -> List[bytes]:
        if len(msgs) < 2:
            return [self.encode_message(msg) for msg in msgs]
        head = msgs[0]
        # A 7-entry fixmap whose first pair is "d": header + "d" key, then
        # a per-destination packed int, then the shared remaining 6 pairs.
        prefix = b"\x87" + self._dumps("d")
        tail = b"".join(
            self._dumps(part)
            for part in (
                "s", head.src, "c", head.channel, "p", _to_wire(head.payload),
                "t", head.send_time, "g", head.tag, "r", head.round,
            )
        )
        return [prefix + self._dumps(msg.dst) + tail for msg in msgs]


def msgpack_extension_available() -> bool:
    """Whether the C :mod:`msgpack` extension is importable on this host."""
    try:
        import msgpack  # type: ignore[import-not-found]  # noqa: F401
    except ImportError:
        return False
    return True


def wire_preferences() -> List[str]:
    """Codec names this host *wants*, best first, for negotiation.

    msgpack leads only when the C extension backs it — the pure-Python
    fallback keeps the format available everywhere but is slower than
    :mod:`json` (which is C-accelerated), so it is an interoperability
    floor, not a preference.
    """
    if msgpack_extension_available():
        return ["msgpack", "json"]
    return ["json"]


def default_codec(prefer: Optional[str] = None) -> Codec:
    """The best codec this host supports.

    ``prefer="json"``/``"msgpack"`` forces a family; by default msgpack is
    used when the C extension is importable, JSON otherwise (the pure
    msgpack fallback exists for interoperability and tests, not speed).
    """
    if prefer == "json":
        return JsonCodec()
    if prefer == "msgpack":
        return MsgpackCodec()
    if prefer is not None:
        raise ConfigurationError(f"unknown codec {prefer!r}")
    if msgpack_extension_available():
        return MsgpackCodec()
    return JsonCodec()
