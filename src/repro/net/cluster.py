"""Deprecated location: :class:`LocalCluster` moved to :mod:`repro.cluster`.

The in-process cluster now lives in :mod:`repro.cluster.local`, next to
the unified :class:`~repro.cluster.api.ClusterAPI` contract it shares
with the multi-process :class:`~repro.proc.ProcessCluster`.  This module
re-exports the old names with a :class:`DeprecationWarning` so existing
imports keep working::

    from repro.net.cluster import LocalCluster      # deprecated
    from repro.cluster import LocalCluster          # new home
"""

from __future__ import annotations

import warnings

_MOVED = ("LocalCluster", "attach_standard_stack", "TRANSPORTS")

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.net.cluster.{name} moved to repro.cluster.{name}; "
            "this alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import cluster as _cluster

        return getattr(_cluster, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
