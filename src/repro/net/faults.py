"""Fault injection for live transports — the runtime twin of
:mod:`repro.sim.links` and :class:`repro.sim.partition.NetworkController`.

A :class:`FaultPlan` is the cluster-wide control surface: per-directed-pair
loss probability, delay models, partitions, process stalls, and loss
storms, with the same verbs the simulator's controller exposes
(``partition`` / ``heal`` / ``isolate`` / ``degrade`` / ``restore``) plus
the scenario-layer additions (``stall`` / ``resume`` / ``storm`` /
``calm``).  A :class:`FaultyTransport` wraps any real transport and
consults the shared plan on every send: drop, delay (through the host
clock, so virtual-clock runs stay deterministic), or pass through.

Injecting at the *sender* mirrors the simulator, where the outgoing link
decides a message's fate at send time; it also means a partition is
symmetric only if the plan says so — directed pairs are first-class, as in
:mod:`repro.sim.links`.

An idle plan (no partition, no stalls, no loss, no delay) costs one
attribute read per send: :attr:`FaultPlan.active` is maintained by the
mutating verbs, and :meth:`FaultyTransport.send` forwards straight to the
wrapped transport while it is ``False``.  That is what lets every cluster
wrap its transports unconditionally — the fault surface is always
reachable, and the no-fault hot path stays as fast as a bare transport.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from ..sim.delays import DelayModel
from ..types import ProcessId, Time
from .transport import Transport

__all__ = ["FaultPlan", "FaultyTransport"]

Pair = Tuple[ProcessId, ProcessId]


def _check_loss(loss_prob: float) -> float:
    """Validate a loss probability: the full closed interval is legal
    (1.0 = drop everything, the blackhole link)."""
    if not 0.0 <= loss_prob <= 1.0:
        raise ConfigurationError(f"loss_prob {loss_prob} outside [0, 1]")
    return loss_prob


class FaultPlan:
    """Shared, mutable description of what the network does to traffic."""

    def __init__(
        self,
        n: int,
        seed: int = 0,
        loss_prob: float = 0.0,
        delay: Optional[DelayModel] = None,
    ) -> None:
        self.n = n
        self.rng = random.Random(seed)
        self.default_loss = _check_loss(loss_prob)
        self.default_delay = delay
        self._pair_loss: Dict[Pair, float] = {}
        self._pair_delay: Dict[Pair, Optional[DelayModel]] = {}
        self._cut: Dict[Pair, bool] = {}
        self._partition_groups: Optional[List[frozenset]] = None
        self._stalled: Set[ProcessId] = set()
        self._storm_loss: Optional[float] = None
        self._storm_delay: Optional[DelayModel] = None
        self.dropped = 0
        self.delayed = 0
        self._refresh_active()

    # ------------------------------------------------------------- fast path
    @property
    def active(self) -> bool:
        """``False`` while the plan would pass every send through untouched
        (the :class:`FaultyTransport` fast path)."""
        return self._active

    def _refresh_active(self) -> None:
        self._active = bool(
            self._cut
            or self._stalled
            or self._pair_loss
            or self._pair_delay
            or self._storm_loss is not None
            or self._storm_delay is not None
            or self.default_loss
            or self.default_delay is not None
        )

    def _check_pid(self, pid: ProcessId) -> ProcessId:
        if pid not in range(self.n):
            raise ConfigurationError(f"unknown pid {pid}")
        return pid

    # ------------------------------------------------------------ partitions
    def partition(self, *groups: Iterable[ProcessId]) -> List[List[ProcessId]]:
        """Cut every directed pair crossing group boundaries (now).

        Processes not named in any group form an implicit final group —
        the exact contract of
        :meth:`repro.sim.partition.NetworkController.partition`.  Returns
        the full, explicit group list (implicit rest group included) so
        callers can record exactly what was applied.
        """
        named = [frozenset(g) for g in groups]
        seen = frozenset().union(*named) if named else frozenset()
        for pid in seen:
            self._check_pid(pid)
        rest = frozenset(range(self.n)) - seen
        all_groups = named + ([rest] if rest else [])
        membership: Dict[ProcessId, int] = {}
        for idx, group in enumerate(all_groups):
            for pid in group:
                if pid in membership:
                    raise ConfigurationError(f"pid {pid} in two groups")
                membership[pid] = idx
        for src in range(self.n):
            for dst in range(self.n):
                if src != dst:
                    self._cut[(src, dst)] = membership[src] != membership[dst]
        self._partition_groups = all_groups
        self._refresh_active()
        return [sorted(group) for group in all_groups]

    def isolate(self, pid: ProcessId) -> List[List[ProcessId]]:
        """Partition *pid* away from everyone else."""
        return self.partition([pid])

    def heal(self) -> None:
        """Remove any active partition."""
        self._cut.clear()
        self._partition_groups = None
        self._refresh_active()

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return self._partition_groups is not None

    # ---------------------------------------------------------------- stalls
    def stall(self, pid: ProcessId) -> None:
        """Silence *pid* entirely: every send from or to it is dropped.

        This is the in-process approximation of ``SIGSTOP`` — the node's
        timers keep running but nothing it says reaches the wire and
        nothing reaches it, so peers observe exactly the silence a frozen
        process produces.  (A real ``SIGSTOP`` buffers rather than drops;
        for loss-tolerant protocols the observable difference is resumed
        duplicates, which the stacks already absorb.)  Idempotent.
        """
        self._stalled.add(self._check_pid(pid))
        self._refresh_active()

    def resume(self, pid: ProcessId) -> None:
        """Undo :meth:`stall` for *pid*.  Idempotent."""
        self._stalled.discard(self._check_pid(pid))
        self._refresh_active()

    @property
    def stalled(self) -> frozenset:
        """Pids currently stalled."""
        return frozenset(self._stalled)

    # ---------------------------------------------------------------- storms
    def storm(
        self, loss_prob: float, delay: Optional[DelayModel] = None
    ) -> None:
        """Start a cluster-wide message-loss storm.

        Every directed pair loses messages with at least *loss_prob*
        (per-pair overrides and the default loss still apply when they
        are harsher), optionally under a congestion *delay* model.  A new
        storm replaces the previous one; :meth:`calm` ends it.
        """
        self._storm_loss = _check_loss(loss_prob)
        self._storm_delay = delay
        self._refresh_active()

    def calm(self) -> None:
        """End an active loss storm.  Idempotent."""
        self._storm_loss = None
        self._storm_delay = None
        self._refresh_active()

    @property
    def storming(self) -> bool:
        """True while a loss storm is in force."""
        return self._storm_loss is not None

    # ----------------------------------------------------------- degradation
    def degrade(
        self,
        src: ProcessId,
        dst: ProcessId,
        loss_prob: Optional[float] = None,
        delay: Optional[DelayModel] = None,
    ) -> None:
        """Override loss and/or delay for the directed pair ``src -> dst``."""
        self._check_pid(src)
        self._check_pid(dst)
        if loss_prob is not None:
            self._pair_loss[(src, dst)] = _check_loss(loss_prob)
        if delay is not None:
            self._pair_delay[(src, dst)] = delay
        self._refresh_active()

    def restore(self, src: ProcessId, dst: ProcessId) -> None:
        """Undo :meth:`degrade` for ``src -> dst``."""
        self._pair_loss.pop((src, dst), None)
        self._pair_delay.pop((src, dst), None)
        self._refresh_active()

    # --------------------------------------------------------------- verdicts
    def plan(self, src: ProcessId, dst: ProcessId) -> Optional[Time]:
        """Decide one send's fate: ``None`` = drop, else extra delay (>= 0).

        Same shape as :meth:`repro.sim.links.Link.plan`, minus the message
        (injection here is content-blind).
        """
        if self._stalled and (src in self._stalled or dst in self._stalled):
            self.dropped += 1
            return None
        if self._cut.get((src, dst), False):
            self.dropped += 1
            return None
        loss = self._pair_loss.get((src, dst), self.default_loss)
        if self._storm_loss is not None and self._storm_loss > loss:
            loss = self._storm_loss
        if loss and (loss >= 1.0 or self.rng.random() < loss):
            self.dropped += 1
            return None
        model = self._pair_delay.get((src, dst), self._storm_delay)
        if model is None:
            model = self.default_delay
        if model is None:
            return 0.0
        delay = model.sample(self.rng, 0.0)
        if delay > 0:
            self.delayed += 1
        return delay


class FaultyTransport(Transport):
    """A proxy transport applying a :class:`FaultPlan` to every send.

    Wraps the real transport of one node; the clock is used to realize
    injected delays, so wrapping loopback-on-virtual-clock keeps runs
    deterministic while still exercising the full fault machinery.  While
    the plan is idle (:attr:`FaultPlan.active` is ``False``) a send is
    one extra attribute read plus a delegated call.
    """

    def __init__(self, inner: Transport, plan: FaultPlan, clock: Any) -> None:
        # Deliberately not calling ``super().__init__``: the traffic
        # counters must live on ``inner`` — it is the transport actually
        # putting frames on the wire — and are re-exposed as read-only
        # properties below so stats read off the proxy stay truthful.
        self.pid = inner.pid
        self.closed = False
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.injected_drops = 0

    frames_sent = property(lambda self: self.inner.frames_sent)
    frames_received = property(lambda self: self.inner.frames_received)
    bytes_sent = property(lambda self: self.inner.bytes_sent)
    bytes_received = property(lambda self: self.inner.bytes_received)
    send_errors = property(lambda self: self.inner.send_errors)

    # Receiver, observer, and peers pass straight through to the wrapped
    # transport.
    def set_receiver(self, receiver) -> None:
        self.inner.set_receiver(receiver)

    def set_observer(self, observer) -> None:
        self.inner.set_observer(observer)

    def set_peers(self, addresses: Dict[ProcessId, Any]) -> None:
        self.inner.set_peers(addresses)

    @property
    def local_address(self) -> Any:
        return self.inner.local_address

    def bind(self):
        return self.inner.bind()

    def close(self):
        self.closed = True
        return self.inner.close()

    def send(self, dst: ProcessId, data: bytes) -> None:
        plan = self.plan
        if not plan.active:
            self.inner.send(dst, data)
            return
        verdict = plan.plan(self.pid, dst)
        if verdict is None:
            self.injected_drops += 1
            return
        if verdict <= 0.0:
            self.inner.send(dst, data)
        else:
            self.clock.schedule(verdict, self.inner.send, dst, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultyTransport over {self.inner!r}>"
