"""Fault injection for live transports — the runtime twin of
:mod:`repro.sim.links` and :class:`repro.sim.partition.NetworkController`.

A :class:`FaultPlan` is the cluster-wide control surface: per-directed-pair
loss probability, delay models, and partitions, with the same verbs the
simulator's controller exposes (``partition`` / ``heal`` / ``isolate`` /
``degrade`` / ``restore``).  A :class:`FaultyTransport` wraps any real
transport and consults the shared plan on every send: drop, delay (through
the host clock, so virtual-clock runs stay deterministic), or pass through.

Injecting at the *sender* mirrors the simulator, where the outgoing link
decides a message's fate at send time; it also means a partition is
symmetric only if the plan says so — directed pairs are first-class, as in
:mod:`repro.sim.links`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.delays import DelayModel
from ..types import ProcessId, Time
from .transport import Transport

__all__ = ["FaultPlan", "FaultyTransport"]

Pair = Tuple[ProcessId, ProcessId]


class FaultPlan:
    """Shared, mutable description of what the network does to traffic."""

    def __init__(
        self,
        n: int,
        seed: int = 0,
        loss_prob: float = 0.0,
        delay: Optional[DelayModel] = None,
    ) -> None:
        if not 0.0 <= loss_prob < 1.0:
            raise ConfigurationError(f"loss_prob {loss_prob} outside [0, 1)")
        self.n = n
        self.rng = random.Random(seed)
        self.default_loss = loss_prob
        self.default_delay = delay
        self._pair_loss: Dict[Pair, float] = {}
        self._pair_delay: Dict[Pair, Optional[DelayModel]] = {}
        self._cut: Dict[Pair, bool] = {}
        self._partition_groups: Optional[List[frozenset]] = None
        self.dropped = 0
        self.delayed = 0

    # ------------------------------------------------------------ partitions
    def partition(self, *groups: Iterable[ProcessId]) -> None:
        """Cut every directed pair crossing group boundaries (now).

        Processes not named in any group form an implicit final group —
        the exact contract of
        :meth:`repro.sim.partition.NetworkController.partition`.
        """
        named = [frozenset(g) for g in groups]
        seen = frozenset().union(*named) if named else frozenset()
        for pid in seen:
            if pid not in range(self.n):
                raise ConfigurationError(f"unknown pid {pid}")
        rest = frozenset(range(self.n)) - seen
        all_groups = named + ([rest] if rest else [])
        membership: Dict[ProcessId, int] = {}
        for idx, group in enumerate(all_groups):
            for pid in group:
                if pid in membership:
                    raise ConfigurationError(f"pid {pid} in two groups")
                membership[pid] = idx
        for src in range(self.n):
            for dst in range(self.n):
                if src != dst:
                    self._cut[(src, dst)] = membership[src] != membership[dst]
        self._partition_groups = all_groups

    def isolate(self, pid: ProcessId) -> None:
        """Partition *pid* away from everyone else."""
        self.partition([pid])

    def heal(self) -> None:
        """Remove any active partition."""
        self._cut.clear()
        self._partition_groups = None

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return self._partition_groups is not None

    # ----------------------------------------------------------- degradation
    def degrade(
        self,
        src: ProcessId,
        dst: ProcessId,
        loss_prob: Optional[float] = None,
        delay: Optional[DelayModel] = None,
    ) -> None:
        """Override loss and/or delay for the directed pair ``src -> dst``."""
        if loss_prob is not None:
            if not 0.0 <= loss_prob < 1.0:
                raise ConfigurationError(f"loss_prob {loss_prob} outside [0, 1)")
            self._pair_loss[(src, dst)] = loss_prob
        if delay is not None:
            self._pair_delay[(src, dst)] = delay

    def restore(self, src: ProcessId, dst: ProcessId) -> None:
        """Undo :meth:`degrade` for ``src -> dst``."""
        self._pair_loss.pop((src, dst), None)
        self._pair_delay.pop((src, dst), None)

    # --------------------------------------------------------------- verdicts
    def plan(self, src: ProcessId, dst: ProcessId) -> Optional[Time]:
        """Decide one send's fate: ``None`` = drop, else extra delay (>= 0).

        Same shape as :meth:`repro.sim.links.Link.plan`, minus the message
        (injection here is content-blind).
        """
        if self._cut.get((src, dst), False):
            self.dropped += 1
            return None
        loss = self._pair_loss.get((src, dst), self.default_loss)
        if loss and self.rng.random() < loss:
            self.dropped += 1
            return None
        model = self._pair_delay.get((src, dst), self.default_delay)
        if model is None:
            return 0.0
        delay = model.sample(self.rng, 0.0)
        if delay > 0:
            self.delayed += 1
        return delay


class FaultyTransport(Transport):
    """A proxy transport applying a :class:`FaultPlan` to every send.

    Wraps the real transport of one node; the clock is used to realize
    injected delays, so wrapping loopback-on-virtual-clock keeps runs
    deterministic while still exercising the full fault machinery.
    """

    def __init__(self, inner: Transport, plan: FaultPlan, clock: Any) -> None:
        # Deliberately not calling ``super().__init__``: the traffic
        # counters must live on ``inner`` — it is the transport actually
        # putting frames on the wire — and are re-exposed as read-only
        # properties below so stats read off the proxy stay truthful.
        self.pid = inner.pid
        self.closed = False
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.injected_drops = 0

    frames_sent = property(lambda self: self.inner.frames_sent)
    frames_received = property(lambda self: self.inner.frames_received)
    bytes_sent = property(lambda self: self.inner.bytes_sent)
    bytes_received = property(lambda self: self.inner.bytes_received)
    send_errors = property(lambda self: self.inner.send_errors)

    # Receiver, observer, and peers pass straight through to the wrapped
    # transport.
    def set_receiver(self, receiver) -> None:
        self.inner.set_receiver(receiver)

    def set_observer(self, observer) -> None:
        self.inner.set_observer(observer)

    def set_peers(self, addresses: Dict[ProcessId, Any]) -> None:
        self.inner.set_peers(addresses)

    @property
    def local_address(self) -> Any:
        return self.inner.local_address

    def bind(self):
        return self.inner.bind()

    def close(self):
        self.closed = True
        return self.inner.close()

    def send(self, dst: ProcessId, data: bytes) -> None:
        verdict = self.plan.plan(self.pid, dst)
        if verdict is None:
            self.injected_drops += 1
            return
        if verdict <= 0.0:
            self.inner.send(dst, data)
        else:
            self.clock.schedule(verdict, self.inner.send, dst, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultyTransport over {self.inner!r}>"
