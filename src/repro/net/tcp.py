"""TCP transport: length-prefixed frames over per-peer connections.

Each node runs one listening server; for each destination it lazily opens
one outgoing connection driven by a writer task.  ``send`` enqueues to the
peer's bounded queue and returns immediately (components must never block);
the writer task drains the queue, framing each message through the shared
:mod:`repro.net.frame` length-prefix contract (header and body pushed as
two writes — the frame bytes are never re-copied into a joined buffer).

Connection churn — a peer not up yet, a peer restarting, a transient RST —
is absorbed by exponential backoff with jitter between (re)connect
attempts.  While a peer is unreachable its queue keeps the most recent
frames and sheds the oldest on overflow: for this library's traffic that is
the right loss discipline, because heartbeats are superseded by newer ones
and protocol messages are re-sendable via stubborn channels.  A TCP
transport therefore behaves like a *fair-lossy* link under churn and a
reliable FIFO link in steady state — both regimes the algorithms are
proven for.

Retries are **bounded**: after ``max_connect_attempts`` consecutive
failed connects the peer is declared unreachable — its queued frames are
dropped (counted in ``dropped_frames``) and a ``net.peer_unreachable``
incident is reported through the transport observer, so a ``kill -9``'d
peer turns into dropped messages plus a trace event instead of a writer
task wedged on a growing queue.  Fresh traffic to that peer re-arms the
attempt budget: under crash-stop the peer never returns and the cycle
repeats cheaply; under churn a recovered peer is picked back up.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..types import ProcessId
from .frame import FrameError, read_frame_bytes, write_frame
from .transport import Transport

__all__ = ["TCPTransport"]

Address = Tuple[str, int]

#: Frames above this are protocol bugs, not traffic (mirrors UDP's budget).
MAX_FRAME = 16 * 1024 * 1024


class TCPTransport(Transport):
    """Stream transport with framing, per-peer queues, and reconnect."""

    def __init__(
        self,
        pid: ProcessId,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 1024,
        backoff_initial: float = 0.05,
        backoff_max: float = 2.0,
        max_connect_attempts: int = 6,
    ) -> None:
        super().__init__(pid)
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.backoff_initial = backoff_initial
        self.backoff_max = backoff_max
        self.max_connect_attempts = max_connect_attempts
        self._server: Optional[asyncio.AbstractServer] = None
        self._queues: Dict[ProcessId, Deque[bytes]] = {}
        self._kick: Dict[ProcessId, asyncio.Event] = {}
        self._writers: Dict[ProcessId, asyncio.Task] = {}
        self._readers: Set[asyncio.Task] = set()
        self.reconnects = 0
        self.shed_frames = 0
        self.dropped_frames = 0
        self.unreachable_peers = 0

    # -------------------------------------------------------------- lifecycle
    async def bind(self) -> None:
        self._server = await asyncio.start_server(
            self._on_accept, host=self.host, port=self.port
        )
        addr = self._server.sockets[0].getsockname()[:2]
        self._peers[self.pid] = addr
        self.port = addr[1]

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._server is not None:
            self._server.close()
        tasks = list(self._writers.values()) + list(self._readers)
        for task in tasks:
            task.cancel()
        # Reap every task; CancelledError is the expected outcome and is
        # BaseException, so anything landing in Exception is a real fault.
        results = await asyncio.gather(*tasks, return_exceptions=True)
        self.send_errors += sum(1 for r in results if isinstance(r, Exception))
        self._writers.clear()
        self._readers.clear()

    # ---------------------------------------------------------------- sending
    def send(self, dst: ProcessId, data: bytes) -> None:
        if self.closed or len(data) > MAX_FRAME:
            return
        queue = self._queues.get(dst)
        if queue is None:
            queue = self._queues[dst] = deque()
            self._kick[dst] = asyncio.Event()
            self._writers[dst] = asyncio.get_running_loop().create_task(
                self._writer_loop(dst)
            )
        if len(queue) >= self.queue_limit:
            queue.popleft()  # shed oldest; see module docstring
            self.shed_frames += 1
        queue.append(data)
        self._kick[dst].set()

    async def _writer_loop(self, dst: ProcessId) -> None:
        """Own the single outgoing connection to *dst*; bounded reconnect."""
        backoff = self.backoff_initial
        attempts = 0  # consecutive failed connects in the current burst
        writer: Optional[asyncio.StreamWriter] = None
        queue = self._queues[dst]
        kick = self._kick[dst]
        try:
            while not self.closed:
                if not queue:
                    kick.clear()
                    await kick.wait()
                    continue
                if writer is None:
                    addr = self._peers.get(dst)
                    if addr is None:
                        await asyncio.sleep(backoff)
                        continue
                    try:
                        _, writer = await asyncio.open_connection(*tuple(addr))
                        backoff = self.backoff_initial
                        attempts = 0
                    except OSError:
                        self.send_errors += 1
                        self.reconnects += 1
                        attempts += 1
                        if attempts >= self.max_connect_attempts:
                            # Peer declared unreachable: flush its queue so
                            # sends degrade to drops (fair-lossy), never a
                            # wedged writer.  New traffic re-arms the budget.
                            dropped = len(queue)
                            queue.clear()
                            self.dropped_frames += dropped
                            self.unreachable_peers += 1
                            self._notify(
                                "net.peer_unreachable",
                                peer=dst, attempts=attempts, dropped=dropped,
                            )
                            backoff = self.backoff_initial
                            attempts = 0
                            continue
                        await asyncio.sleep(backoff)
                        backoff = min(backoff * 2, self.backoff_max)
                        continue
                frame = queue[0]
                try:
                    write_frame(writer, frame)
                    await writer.drain()
                except (OSError, ConnectionError):
                    self.send_errors += 1
                    writer = None  # drop the connection, keep the frame
                    continue
                queue.popleft()
                self.frames_sent += 1
                self.bytes_sent += len(frame)
        finally:
            if writer is not None:
                writer.close()

    # -------------------------------------------------------------- receiving
    async def _on_accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._readers.add(task)
            task.add_done_callback(self._readers.discard)
        try:
            while not self.closed:
                frame = await read_frame_bytes(reader, MAX_FRAME)
                if frame is None:
                    break  # clean EOF at a frame boundary
                self._dispatch(frame)
        except (FrameError, ConnectionError, OSError):
            pass  # peer went away or corrupted the stream; it may reconnect
        except asyncio.CancelledError:
            # Cancelled by close().  Finish normally: asyncio's stream-server
            # wrapper calls task.exception() on this task from a plain
            # callback and would log a spurious traceback for a cancelled one.
            pass
        finally:
            writer.close()
