"""UDP transport: one datagram socket per node, one frame per datagram.

UDP matches the paper's link models better than TCP does: datagrams can be
lost or reordered, which is exactly the fair-lossy regime the protocols are
designed to tolerate (heartbeats are periodic, consensus messages are
idempotent, and :meth:`~repro.sim.component.Component.enable_stubborn_resend`
exists for runs that need reliable-link behaviour on top).  On localhost
loss is rare but the code never assumes delivery.

Frames above the configured datagram budget are dropped at the sender with
a counter bump rather than fragmented — every payload this library's
protocols produce is far below 64 KiB, so hitting the cap indicates a bug
worth surfacing, not a case worth engineering for.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from ..types import ProcessId
from .transport import Transport

__all__ = ["UDPTransport"]

Address = Tuple[str, int]


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self, owner: "UDPTransport") -> None:
        self.owner = owner

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.owner._dispatch(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP unreachable for a peer that died mid-run: UDP is lossy by
        # contract, so this is ordinary weather, not an error path.
        self.owner.send_errors += 1


class UDPTransport(Transport):
    """Datagram transport bound to ``host:port`` (port 0 = ephemeral)."""

    #: Refuse frames above this size instead of fragmenting (see module doc).
    MAX_DATAGRAM = 60_000

    def __init__(
        self, pid: ProcessId, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__(pid)
        self.host = host
        self.port = port
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.oversize_drops = 0

    async def bind(self) -> None:
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=(self.host, self.port)
        )
        addr = self._transport.get_extra_info("sockname")[:2]
        self._peers[self.pid] = addr
        self.port = addr[1]

    def send(self, dst: ProcessId, data: bytes) -> None:
        if self.closed or self._transport is None:
            return
        addr = self._peers.get(dst)
        if addr is None:
            self.send_errors += 1
            return
        if len(data) > self.MAX_DATAGRAM:
            self.oversize_drops += 1
            return
        self.frames_sent += 1
        self.bytes_sent += len(data)
        self._transport.sendto(data, tuple(addr))

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._transport is not None:
            self._transport.close()
            self._transport = None
