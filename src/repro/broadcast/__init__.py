"""Broadcast primitives (Reliable Broadcast used by the consensus layer)."""

from .reliable import MessageId, ReliableBroadcast
from .uniform import UniformReliableBroadcast

__all__ = ["ReliableBroadcast", "MessageId", "UniformReliableBroadcast"]
