"""Reliable Broadcast (R-broadcast / R-deliver).

The classic crash-tolerant relay algorithm of Chandra–Toueg [6]: to
R-broadcast *m*, send *m* to every process (including yourself); on first
receipt of *m*, relay it to every other process *before* R-delivering it.
With reliable links this guarantees:

* **validity** — a correct broadcaster eventually R-delivers its own message;
* **agreement** — if any correct process R-delivers *m*, every correct
  process eventually R-delivers *m* (the relay step covers broadcasters that
  crash mid-send);
* **uniform integrity** — every process R-delivers *m* at most once, and
  only if *m* was R-broadcast.

Each broadcast costs Θ(n²) messages; the paper's per-round message counts
deliberately exclude these, and so does the metrics layer (RB messages are
tagged ``rb`` on their own channel).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Set, Tuple

from ..sim.component import Component
from ..types import ProcessId

__all__ = ["ReliableBroadcast"]

#: Message id: (origin pid, per-origin sequence number).
MessageId = Tuple[ProcessId, int]


class ReliableBroadcast(Component):
    """R-broadcast / R-deliver component (see module docstring).

    Parameters:
        retransmit_period: when set, every known message is periodically
            re-relayed to all processes.  The base algorithm needs this on
            *reliable* links never — it exists for runs that deliberately
            violate the model (network partitions): retransmission restores
            the agreement property once the partition heals, at the price
            of steady background chatter.  ``None`` (default) keeps the
            paper's one-shot relay and its message counts.
    """

    channel = "rb"

    def __init__(
        self,
        channel: str = "rb",
        retransmit_period: float | None = None,
    ) -> None:
        super().__init__(channel)
        self._seq = 0
        self._delivered: Set[MessageId] = set()
        self._payloads: Dict[MessageId, Any] = {}
        self._callbacks: List[Callable[[ProcessId, Any], None]] = []
        self.delivered_log: List[Tuple[float, ProcessId, Any]] = []
        self.retransmit_period = retransmit_period

    def on_start(self) -> None:
        if self.retransmit_period is not None:
            self.periodically(self.retransmit_period, self._retransmit)

    def _retransmit(self) -> None:
        for mid, payload in self._payloads.items():
            self.broadcast((mid, payload), tag="rb-retransmit")

    # ----------------------------------------------------------------- API
    def on_deliver(self, callback: Callable[[ProcessId, Any], None]) -> None:
        """Register *callback(origin, payload)* for every R-delivery."""
        self._callbacks.append(callback)

    def rbroadcast(self, payload: Any) -> MessageId:
        """R-broadcast *payload* to the whole system (including self)."""
        mid: MessageId = (self.pid, self._seq)
        self._seq += 1
        self._handle(mid, payload)
        return mid

    # ------------------------------------------------------------ internals
    def on_message(self, src: ProcessId, wire: Any) -> None:
        mid, payload = wire
        self._handle(mid, payload)

    def _handle(self, mid: MessageId, payload: Any) -> None:
        if mid in self._delivered:
            return
        self._delivered.add(mid)
        self._payloads[mid] = payload
        # Relay before delivering, so that if delivery triggers a crash (in
        # fault-injection tests) agreement is already secured.
        self.broadcast((mid, payload), tag="rb")
        self._deliver(mid[0], payload)

    def _deliver(self, origin: ProcessId, payload: Any) -> None:
        self.delivered_log.append((self.now, origin, payload))
        self.trace("rdeliver", origin=origin)
        for callback in self._callbacks:
            callback(origin, payload)
