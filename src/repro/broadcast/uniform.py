"""Uniform Reliable Broadcast (majority-ack algorithm).

Plain Reliable Broadcast allows a *faulty* process to deliver a message
that no correct process ever delivers (it may deliver and crash before
relaying).  Uniform RB closes that gap:

* **uniform agreement** — if *any* process (correct or faulty) U-delivers
  *m*, then every correct process eventually U-delivers *m*.

The classical majority-based algorithm (requires f < n/2, the same
assumption as the consensus layer): relay every message on first receipt,
but U-deliver only once copies have been seen from a strict majority of
processes — at least one of which is correct and has relayed to everybody.

The paper's Uniform Consensus discussion (Section 5.1) is what motivates
carrying the uniform variant in the library: with ◇S-class detectors,
consensus decisions are uniform anyway (Guerraoui's result, cited there),
and this primitive lets tests state that end to end.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Set, Tuple

from ..sim.component import Component
from ..types import ProcessId
from .reliable import MessageId

__all__ = ["UniformReliableBroadcast"]


class UniformReliableBroadcast(Component):
    """Majority-ack URB component (see module docstring)."""

    channel = "urb"

    def __init__(self, channel: str = "urb") -> None:
        super().__init__(channel)
        self._seq = 0
        self._relayed: Set[MessageId] = set()
        self._delivered: Set[MessageId] = set()
        self._seen_by: Dict[MessageId, Set[ProcessId]] = {}
        self._payloads: Dict[MessageId, Any] = {}
        self._callbacks: List[Callable[[ProcessId, Any], None]] = []
        self.delivered_log: List[Tuple[float, ProcessId, Any]] = []

    # ----------------------------------------------------------------- API
    def on_deliver(self, callback: Callable[[ProcessId, Any], None]) -> None:
        """Register *callback(origin, payload)* for every U-delivery."""
        self._callbacks.append(callback)

    def urbroadcast(self, payload: Any) -> MessageId:
        """U-broadcast *payload* to the whole system (including self)."""
        mid: MessageId = (self.pid, self._seq)
        self._seq += 1
        self._relay(mid, payload)
        return mid

    # ------------------------------------------------------------ internals
    def _relay(self, mid: MessageId, payload: Any) -> None:
        if mid in self._relayed:
            return
        self._relayed.add(mid)
        self._payloads[mid] = payload
        self._seen_by.setdefault(mid, set()).add(self.pid)
        self.broadcast((mid, payload), tag="urb")
        self._maybe_deliver(mid)

    def on_message(self, src: ProcessId, wire: Any) -> None:
        mid, payload = wire
        self._seen_by.setdefault(mid, set()).add(src)
        self._relay(mid, payload)
        self._maybe_deliver(mid)

    def _maybe_deliver(self, mid: MessageId) -> None:
        if mid in self._delivered:
            return
        if len(self._seen_by[mid]) >= self.n // 2 + 1:
            self._delivered.add(mid)
            payload = self._payloads[mid]
            self.delivered_log.append((self.now, mid[0], payload))
            self.trace("urbdeliver", origin=mid[0])
            for callback in self._callbacks:
                callback(mid[0], payload)
