"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was built or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent internal state."""


class CrashedProcessError(SimulationError):
    """An operation was attempted on behalf of a crashed process."""


class TaskError(SimulationError):
    """A cooperative task misbehaved (e.g. yielded an unknown directive)."""


class ProtocolError(ReproError):
    """A distributed algorithm received a message it cannot interpret."""


class PropertyViolation(ReproError):
    """A checked correctness property was violated on a trace.

    Raised by the strict (``require_*``) variants of the property checkers in
    :mod:`repro.analysis`; the non-strict variants return a result object
    instead of raising.
    """
