"""Reproduction of "Eventually consistent failure detectors" (Larrea,
Fernández, Arévalo; J. Parallel Distrib. Comput. 65, 2005 — originally
announced 2001).

The package provides:

* a deterministic discrete-event simulator of asynchronous / partially
  synchronous crash-prone message-passing systems (:mod:`repro.sim`);
* the failure-detector class taxonomy with oracle and message-passing
  implementations, including the paper's new class ◇C (:mod:`repro.fd`);
* the class transformations of Section 3 and the ◇C → ◇P algorithm of
  Section 4 / Fig. 2 (:mod:`repro.transform`);
* the ◇C-based Uniform Consensus algorithm of Section 5 / Figs. 3–4 plus
  the Chandra–Toueg, Mostefaoui–Raynal and Paxos baselines
  (:mod:`repro.consensus`);
* trace-based property checkers and metrics (:mod:`repro.analysis`) and
  canonical experiment scenarios (:mod:`repro.workloads`).

The curated public API is re-exported here from :mod:`repro.core`.
"""

from .core import *  # noqa: F401,F403
from .core import __all__ as _core_all

__version__ = "1.0.0"
__all__ = list(_core_all) + ["__version__"]
