"""The load generator (see package docstring for the two loop models).

Latencies land in two places on purpose: the shared
:class:`~repro.obs.metrics.MetricsRegistry` histogram
(``svc_request_latency_seconds``) keeps the streaming count/sum/min/max
that rides snapshots and the stats endpoint, while the generator keeps
its own raw sample list — the registry's histograms deliberately store
no quantiles, and a throughput benchmark without p99 is not one.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..net.codec import Codec
from ..obs.metrics import MetricsRegistry
from ..svc.client import KVClient, ServiceUnavailable

__all__ = ["LoadGenerator", "LoadReport", "percentile"]

Address = Tuple[str, int]

_MODES = ("closed", "open")


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """The *q*-quantile (0..1) of *samples* by nearest-rank; None if empty."""
    if not samples:
        return None
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 1))  # ceil without math import
    return ordered[min(len(ordered) - 1, int(rank) - 1)]


@dataclass
class LoadReport:
    """One run's results, ready for tables and JSON."""

    mode: str
    clients: int
    duration: float
    target_rate: Optional[float]
    attempted: int = 0
    acked: int = 0
    errors: int = 0
    shed: int = 0
    redirects: int = 0
    retries: int = 0
    latencies: List[float] = field(default_factory=list)
    #: client_id -> (key, seq, value) of its last acknowledged put.
    last_acked_put: Dict[str, Tuple[str, int, Any]] = field(
        default_factory=dict
    )
    #: Consensus-side shape of the run, filled in by harnesses that can
    #: see the replicas' metrics (None when only the client side is
    #: visible): decided slots per second and mean commands per batch.
    slots_per_s: Optional[float] = None
    mean_batch: Optional[float] = None

    @property
    def achieved_rate(self) -> float:
        """Acknowledged commands per wall second."""
        return self.acked / self.duration if self.duration > 0 else 0.0

    def latency(self, q: float) -> Optional[float]:
        return percentile(self.latencies, q)

    def attach_consensus_shape(self, rsms: Sequence[Any]) -> None:
        """Derive slots/s and mean batch size from the replicas themselves.

        *rsms* are the run's :class:`ReplicatedStateMachine` components
        (any substrate exposing ``current_slot`` and ``log``).  Slot rate
        counts every decided slot (NOOPs included — they are real
        consensus instances); mean batch is applied commands per decided
        slot, the honest "how many commands rode each instance" number.
        """
        slots = max((r.current_slot for r in rsms), default=0)
        commands = max((len(r.log) for r in rsms), default=0)
        if slots > 0 and self.duration > 0:
            self.slots_per_s = slots / self.duration
            self.mean_batch = commands / slots

    def summary(self) -> Dict[str, Any]:
        p50, p95, p99 = (self.latency(q) for q in (0.5, 0.95, 0.99))
        return {
            "mode": self.mode,
            "clients": self.clients,
            "duration_s": round(self.duration, 3),
            "target_rate": self.target_rate,
            "attempted": self.attempted,
            "acked": self.acked,
            "errors": self.errors,
            "shed": self.shed,
            "redirects": self.redirects,
            "retries": self.retries,
            "acked_per_s": round(self.achieved_rate, 2),
            "p50_ms": None if p50 is None else round(p50 * 1e3, 2),
            "p95_ms": None if p95 is None else round(p95 * 1e3, 2),
            "p99_ms": None if p99 is None else round(p99 * 1e3, 2),
            "slots_per_s": (
                None if self.slots_per_s is None
                else round(self.slots_per_s, 2)
            ),
            "mean_batch": (
                None if self.mean_batch is None else round(self.mean_batch, 2)
            ),
        }

    def render(self) -> str:
        parts = [f"{key}={value}" for key, value in self.summary().items()]
        return "load report: " + " ".join(parts)


class LoadGenerator:
    """Drive *clients* KV sessions against the service at *addrs*.

    Parameters:
        addrs: serve addresses of the replicas (any subset; clients
            follow redirects to the leader from there).
        clients: session count.  Closed loop: all run concurrently.
            Open loop: a pool the dispatcher draws from — a tick finding
            the pool empty is *shed* and counted, never queued (that is
            what makes it open-loop).
        mode: ``closed`` (fixed clients + think time) or ``open``
            (Poisson-less fixed-interval dispatch at ``rate``/s).
        duration: how long to offer load, in wall seconds.
        rate: open-loop target command rate (commands/s), required there.
        think: closed-loop think time between a reply and the next
            command, in seconds.
        write_fraction: probability a command is a ``put`` (the rest are
            ``get``\\ s); every client owns one key (``k<i>``) and writes
            an incrementing counter value, which is what the
            acked-write-loss check consumes.
        request_timeout / max_attempts: forwarded to every client.
    """

    def __init__(
        self,
        addrs: Sequence[Address],
        clients: int = 10,
        mode: str = "closed",
        duration: float = 5.0,
        rate: Optional[float] = None,
        think: float = 0.0,
        write_fraction: float = 0.8,
        key_space: Optional[int] = None,
        request_timeout: float = 30.0,
        max_attempts: int = 10,
        seed: int = 0,
        codec: Optional[Codec] = None,
        metrics: Optional[MetricsRegistry] = None,
        client_prefix: str = "load",
    ) -> None:
        if mode not in _MODES:
            raise ConfigurationError(
                f"unknown load mode {mode!r}; pick one of {_MODES}"
            )
        if clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {clients}")
        if mode == "open" and (rate is None or rate <= 0):
            raise ConfigurationError("open-loop mode needs a positive rate")
        self.addrs = [(a[0], a[1]) for a in addrs]
        self.clients = clients
        self.mode = mode
        self.duration = duration
        self.rate = rate
        self.think = think
        self.write_fraction = write_fraction
        self.key_space = key_space if key_space is not None else clients
        self.request_timeout = request_timeout
        self.max_attempts = max_attempts
        self.seed = seed
        self.codec = codec
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.client_prefix = client_prefix

    # ----------------------------------------------------------------- runs
    async def run(self) -> LoadReport:
        """Offer load for :attr:`duration`; returns the report."""
        report = LoadReport(
            mode=self.mode, clients=self.clients, duration=self.duration,
            target_rate=self.rate,
        )
        sessions = [self._make_client(i) for i in range(self.clients)]
        started = time.monotonic()
        deadline = started + self.duration
        try:
            if self.mode == "closed":
                workers = [
                    asyncio.create_task(
                        self._closed_loop(i, client, deadline, report)
                    )
                    for i, client in enumerate(sessions)
                ]
                await asyncio.gather(*workers)
            else:
                await self._open_loop(sessions, deadline, report)
        finally:
            # Offered for `duration`, but in-flight commands may drain past
            # the deadline — rate honesty wants the real window.
            report.duration = max(self.duration, time.monotonic() - started)
            for client in sessions:
                await client.close()
            report.redirects = sum(c.redirects for c in sessions)
            report.retries = sum(c.retries for c in sessions)
        return report

    def _make_client(self, index: int) -> KVClient:
        return KVClient(
            self.addrs,
            client_id=f"{self.client_prefix}-{index}",
            codec=self.codec,
            request_timeout=self.request_timeout,
            max_attempts=self.max_attempts,
            seed=self.seed * 100003 + index,
        )

    # ------------------------------------------------------------ one command
    async def _one_command(
        self, index: int, client: KVClient, rng: random.Random,
        counter: List[int], report: LoadReport,
    ) -> None:
        report.attempted += 1
        write = rng.random() < self.write_fraction
        key = f"k{index % self.key_space}"
        started = time.monotonic()
        try:
            if write:
                value = counter[0]
                counter[0] += 1
                seq_before = client.next_seq
                result = await client.put(key, value)
            else:
                result = await client.get(key)
        except (ServiceUnavailable, OSError, ConnectionError):
            report.errors += 1
            return
        elapsed = time.monotonic() - started
        op = "put" if write else "get"
        if result.get("ok"):
            report.acked += 1
            report.latencies.append(elapsed)
            self.metrics.observe("svc_request_latency_seconds", elapsed, op=op)
            if write:
                report.last_acked_put[client.client_id] = (
                    key, seq_before, value
                )
        else:
            report.errors += 1

    # ------------------------------------------------------------ loop models
    async def _closed_loop(
        self, index: int, client: KVClient, deadline: float,
        report: LoadReport,
    ) -> None:
        rng = random.Random(self.seed * 1009 + index)
        counter = [0]
        # Desynchronize the fleet's first shot.
        await asyncio.sleep(rng.uniform(0, min(0.1, self.duration / 10)))
        while time.monotonic() < deadline:
            await self._one_command(index, client, rng, counter, report)
            if self.think > 0 and time.monotonic() < deadline:
                await asyncio.sleep(self.think)

    async def _open_loop(
        self, sessions: List[KVClient], deadline: float, report: LoadReport,
    ) -> None:
        assert self.rate is not None
        rng = random.Random(self.seed)
        free: List[int] = list(range(len(sessions)))
        counters = [[0] for _ in sessions]
        in_flight: Set[asyncio.Task] = set()
        start = time.monotonic()
        tick = 0

        def _release(index: int, task: asyncio.Task) -> None:
            in_flight.discard(task)
            free.append(index)

        while True:
            now = time.monotonic()
            if now >= deadline:
                break
            target = start + tick / self.rate
            if target > now:
                await asyncio.sleep(min(target - now, deadline - now))
                continue
            tick += 1
            if not free:
                report.shed += 1  # open loop: no client free, demand is lost
                continue
            index = free.pop()
            task = asyncio.create_task(
                self._one_command(
                    index, sessions[index], rng, counters[index], report
                )
            )
            in_flight.add(task)
            task.add_done_callback(
                lambda t, index=index: _release(index, t)
            )
        if in_flight:
            await asyncio.gather(*in_flight, return_exceptions=True)
