"""repro.load — open/closed-loop load generation for :mod:`repro.svc`.

:class:`LoadGenerator` drives fleets of :class:`~repro.svc.KVClient`
sessions against a replicated KV service and measures what the paper's
machinery cannot see from inside: end-to-end client latency and achieved
decided-commands/s.  Closed-loop mode fixes the client population (each
waits for its reply, thinks, repeats); open-loop mode dispatches at a
target rate from a client pool regardless of completions — the classic
pair of load models, with the classic caveat that only open loop exposes
queueing collapse.
"""

from .generator import LoadGenerator, LoadReport, percentile

__all__ = ["LoadGenerator", "LoadReport", "percentile"]
