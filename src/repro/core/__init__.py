"""The curated public API of the reproduction.

``repro.core`` gathers the paper's primary contributions and the handful of
substrate types a downstream user needs:

* the new detector class **◇C** (:data:`EVENTUALLY_CONSISTENT`) with its
  message-passing constructions (:func:`attach_ec_stack`,
  :class:`CombinedDetector`),
* the **◇C → ◇P transformation** of Fig. 2 (:class:`CToPTransformation`),
* the **◇C-based Uniform Consensus** algorithm of Figs. 3–4
  (:class:`ECConsensus`) together with the baselines it is compared to,
* the simulation substrate (:class:`World`, link models, crash schedules)
  and the property checkers needed to validate runs.

``import repro`` re-exports everything here.
"""

from ..analysis import (
    check_consensus,
    check_fd_class,
    extract_outcome,
    require_consensus,
    require_fd_class,
)
from ..broadcast import ReliableBroadcast, UniformReliableBroadcast
from ..consensus import (
    ALGORITHMS,
    ChandraTouegConsensus,
    ConsensusProtocol,
    ECConsensus,
    MostefaouiRaynalConsensus,
    NOOP,
    NULL,
    PaxosConsensus,
    ReplicatedStateMachine,
    TotalOrderBroadcast,
    attach_consensus,
    propose_all,
)
from ..fd import (
    ALL_CLASSES,
    CombinedDetector,
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    FailureDetector,
    FDClass,
    HeartbeatCounterDetector,
    HeartbeatEventuallyPerfect,
    LeaderBasedOmega,
    OMEGA,
    OracleConfig,
    OracleFailureDetector,
    PERFECT,
    RingDetector,
    StableLeaderOmega,
    attach_ec_stack,
    first_non_suspected,
)
from ..sim import (
    Component,
    NetworkController,
    CrashSchedule,
    FairLossyLink,
    PartiallySynchronousLink,
    ReliableLink,
    World,
    crash_at,
    no_crashes,
    random_crashes,
)
from ..transform import (
    CToPTransformation,
    OmegaToC,
    PToC,
    SToC,
    WToS,
    attach_s_to_c_stack,
)

__all__ = [
    # analysis
    "check_consensus",
    "check_fd_class",
    "extract_outcome",
    "require_consensus",
    "require_fd_class",
    # broadcast
    "ReliableBroadcast",
    "UniformReliableBroadcast",
    # consensus
    "ALGORITHMS",
    "ChandraTouegConsensus",
    "ConsensusProtocol",
    "ECConsensus",
    "MostefaouiRaynalConsensus",
    "NOOP",
    "NULL",
    "PaxosConsensus",
    "ReplicatedStateMachine",
    "TotalOrderBroadcast",
    "attach_consensus",
    "propose_all",
    # failure detectors
    "ALL_CLASSES",
    "CombinedDetector",
    "EVENTUALLY_CONSISTENT",
    "EVENTUALLY_PERFECT",
    "EVENTUALLY_STRONG",
    "EVENTUALLY_WEAK",
    "FailureDetector",
    "FDClass",
    "HeartbeatCounterDetector",
    "HeartbeatEventuallyPerfect",
    "LeaderBasedOmega",
    "OMEGA",
    "OracleConfig",
    "OracleFailureDetector",
    "PERFECT",
    "RingDetector",
    "StableLeaderOmega",
    "attach_ec_stack",
    "first_non_suspected",
    # simulation substrate
    "Component",
    "NetworkController",
    "CrashSchedule",
    "FairLossyLink",
    "PartiallySynchronousLink",
    "ReliableLink",
    "World",
    "crash_at",
    "no_crashes",
    "random_crashes",
    # transformations
    "CToPTransformation",
    "OmegaToC",
    "PToC",
    "SToC",
    "WToS",
    "attach_s_to_c_stack",
]
