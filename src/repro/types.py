"""Shared primitive types used across the :mod:`repro` package.

The simulator identifies processes by small non-negative integers
(``0 .. n-1``).  The paper writes :math:`\\Pi = \\{p_1, \\dots, p_n\\}`; we map
:math:`p_i` to the integer ``i - 1`` so that indexing is natural in Python.
Simulated time is a float of abstract "time units"; nothing in the library
depends on the unit chosen.
"""

from __future__ import annotations

from typing import TypeAlias

#: Identifier of a process in the system (``0 <= pid < n``).
ProcessId: TypeAlias = int

#: Simulated time, in abstract units.
Time: TypeAlias = float

#: Name of a logical communication channel multiplexed over the network.
Channel: TypeAlias = str


def validate_pid(pid: ProcessId, n: int) -> ProcessId:
    """Return *pid* unchanged after checking it is a valid id for *n* processes.

    Raises:
        ValueError: if ``pid`` is outside ``range(n)``.
    """
    if not isinstance(pid, int) or isinstance(pid, bool):
        raise ValueError(f"process id must be an int, got {pid!r}")
    if not 0 <= pid < n:
        raise ValueError(f"process id {pid} out of range for n={n}")
    return pid
