"""Tests for the deterministic RNG streams and the trace store."""

from hypothesis import given, strategies as st

from repro.sim import RandomSource, Trace


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(1).stream("x")
        b = RandomSource(1).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        src = RandomSource(1)
        xs = [src.stream("x").random() for _ in range(5)]
        ys = [src.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_stream_is_cached(self):
        src = RandomSource(1)
        assert src.stream("x") is src.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        a = RandomSource(1)
        first = a.stream("x").random()
        b = RandomSource(1)
        b.stream("newcomer")  # extra stream created first
        assert b.stream("x").random() == first

    def test_spawn_gives_different_universe(self):
        src = RandomSource(1)
        child = src.spawn("sub")
        assert child.seed != src.seed
        assert child.stream("x").random() != src.stream("x").random()

    @given(st.integers(), st.text(min_size=1, max_size=20))
    def test_streams_reproducible_for_any_seed_and_name(self, seed, name):
        a = RandomSource(seed).stream(name).random()
        b = RandomSource(seed).stream(name).random()
        assert a == b


class TestTrace:
    def test_records_and_counts(self):
        trace = Trace()
        trace.record(1.0, "send", 0, channel="c")
        trace.record(2.0, "send", 1, channel="c")
        trace.record(3.0, "crash", 1)
        assert len(trace) == 3
        assert trace.count("send") == 2
        assert trace.count("crash") == 1
        assert trace.count("nothing") == 0

    def test_kind_filter_discards(self):
        trace = Trace(kinds=["crash"])
        trace.record(1.0, "send", 0)
        trace.record(2.0, "crash", 0)
        assert len(trace) == 1
        assert trace.events[0].kind == "crash"

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(1.0, "send", 0)
        assert len(trace) == 0

    def test_wants(self):
        assert Trace().wants("anything")
        assert not Trace(enabled=False).wants("anything")
        assert Trace(kinds=["a"]).wants("a")
        assert not Trace(kinds=["a"]).wants("b")

    def test_select_filters(self):
        trace = Trace()
        for t in range(10):
            trace.record(float(t), "tick", t % 2, value=t)
        assert len(trace.select(kind="tick")) == 10
        assert len(trace.select(pid=0)) == 5
        assert len(trace.select(after=5.0)) == 5
        assert len(trace.select(before=4.0)) == 5
        assert len(trace.select(where=lambda e: e.get("value") > 7)) == 2

    def test_last(self):
        trace = Trace()
        trace.record(1.0, "x", 0, v=1)
        trace.record(2.0, "x", 1, v=2)
        assert trace.last("x").get("v") == 2
        assert trace.last("x", pid=0).get("v") == 1
        assert trace.last("missing") is None

    def test_end_time(self):
        trace = Trace()
        assert trace.end_time == 0.0
        trace.record(7.5, "x", 0)
        assert trace.end_time == 7.5

    def test_event_get_default(self):
        trace = Trace()
        trace.record(1.0, "x", 0, a=1)
        ev = trace.events[0]
        assert ev.get("a") == 1
        assert ev.get("b", "dflt") == "dflt"
