"""Tests for the cooperative task runtime."""

import pytest

from repro.errors import TaskError
from repro.sim import Scheduler, Sleep, TaskRuntime, WaitUntil


@pytest.fixture
def runtime():
    sched = Scheduler()
    return sched, TaskRuntime(sched)


class TestSleep:
    def test_sleep_suspends_for_duration(self, runtime):
        sched, rt = runtime
        log = []

        def task():
            log.append(("start", sched.now))
            yield Sleep(5.0)
            log.append(("end", sched.now))

        rt.spawn(task())
        sched.run()
        assert log == [("start", 0.0), ("end", 5.0)]

    def test_negative_sleep_rejected(self):
        with pytest.raises(TaskError):
            Sleep(-1.0)

    def test_consecutive_sleeps(self, runtime):
        sched, rt = runtime
        times = []

        def task():
            for _ in range(3):
                yield Sleep(2.0)
                times.append(sched.now)

        rt.spawn(task())
        sched.run()
        assert times == [2.0, 4.0, 6.0]


class TestWaitUntil:
    def test_true_predicate_continues_immediately(self, runtime):
        sched, rt = runtime
        log = []

        def task():
            yield WaitUntil(lambda: True)
            log.append(sched.now)

        rt.spawn(task())
        assert log == [0.0]  # ran synchronously, no scheduler needed

    def test_parked_until_poke(self, runtime):
        sched, rt = runtime
        flag = {"ready": False}
        log = []

        def task():
            yield WaitUntil(lambda: flag["ready"])
            log.append("resumed")

        task_obj = rt.spawn(task())
        assert task_obj.parked
        rt.poke()
        assert log == []  # still false
        flag["ready"] = True
        rt.poke()
        assert log == ["resumed"]
        assert task_obj.done

    def test_poke_fixpoint_chains_tasks(self, runtime):
        """Resuming one task can unblock another at the same instant."""
        sched, rt = runtime
        state = {"a": False, "b": False}
        log = []

        def task_b():
            yield WaitUntil(lambda: state["b"])
            log.append("b")

        def task_a():
            yield WaitUntil(lambda: state["a"])
            state["b"] = True
            log.append("a")

        rt.spawn(task_b())
        rt.spawn(task_a())
        state["a"] = True
        rt.poke()
        assert log == ["a", "b"]

    def test_sleep_wake_also_pokes_other_tasks(self, runtime):
        sched, rt = runtime
        state = {"done": False}
        log = []

        def sleeper():
            yield Sleep(1.0)
            state["done"] = True

        def waiter():
            yield WaitUntil(lambda: state["done"])
            log.append(sched.now)

        rt.spawn(waiter())
        rt.spawn(sleeper())
        sched.run()
        assert log == [1.0]


class TestLifecycle:
    def test_bare_yield_defers_to_same_time_events(self, runtime):
        sched, rt = runtime
        log = []

        def task():
            log.append("before")
            yield
            log.append("after")

        sched.schedule(0.0, log.append, "queued")
        rt.spawn(task())
        sched.run()
        assert log == ["before", "queued", "after"]

    def test_stop_kills_tasks(self, runtime):
        sched, rt = runtime
        log = []

        def task():
            yield Sleep(1.0)
            log.append("should not happen")

        rt.spawn(task())
        rt.stop()
        sched.run()
        assert log == []
        assert rt.alive == 0

    def test_spawn_after_stop_raises(self, runtime):
        sched, rt = runtime
        rt.stop()
        with pytest.raises(TaskError):
            rt.spawn(iter(()))

    def test_unknown_directive_raises(self, runtime):
        sched, rt = runtime

        def task():
            yield "bogus"

        with pytest.raises(TaskError):
            rt.spawn(task())

    def test_task_finishing_immediately(self, runtime):
        sched, rt = runtime

        def task():
            return
            yield  # pragma: no cover

        t = rt.spawn(task())
        assert t.done
        assert rt.alive == 0

    def test_alive_count(self, runtime):
        sched, rt = runtime

        def task():
            yield Sleep(1.0)

        rt.spawn(task())
        rt.spawn(task())
        assert rt.alive == 2
        sched.run()
        assert rt.alive == 0

    def test_yield_from_subgenerators(self, runtime):
        sched, rt = runtime
        log = []

        def sub():
            yield Sleep(1.0)
            log.append("sub")

        def main():
            yield from sub()
            log.append("main")

        rt.spawn(main())
        sched.run()
        assert log == ["sub", "main"]
