"""Tests for delay models and link models."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.sim import (
    DeadLink,
    ExponentialDelay,
    FairLossyLink,
    FixedDelay,
    PartiallySynchronousLink,
    ReliableLink,
    SpikeDelay,
    UniformDelay,
)
from repro.sim.message import Message


def _msg(t=0.0):
    return Message(src=0, dst=1, channel="c", payload=None, send_time=t)


class TestDelayModels:
    def test_fixed(self):
        rng = random.Random(0)
        model = FixedDelay(2.5)
        assert model.sample(rng, 0.0) == 2.5
        assert model.max_delay == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(-1.0)

    def test_uniform_bounds(self):
        rng = random.Random(0)
        model = UniformDelay(1.0, 3.0)
        for _ in range(200):
            assert 1.0 <= model.sample(rng, 0.0) <= 3.0
        assert model.max_delay == 3.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(3.0, 1.0)
        with pytest.raises(ConfigurationError):
            UniformDelay(-1.0, 1.0)

    def test_exponential_cap(self):
        rng = random.Random(0)
        model = ExponentialDelay(base=1.0, mean=2.0, cap=5.0)
        for _ in range(200):
            s = model.sample(rng, 0.0)
            assert 1.0 <= s <= 5.0
        assert model.max_delay == 5.0

    def test_exponential_unbounded_max(self):
        assert ExponentialDelay(0.0, 1.0).max_delay == math.inf

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialDelay(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            ExponentialDelay(0.0, 0.0)

    def test_spike_within_union_of_ranges(self):
        rng = random.Random(0)
        model = SpikeDelay(UniformDelay(0.0, 1.0), 0.5, 10.0, 20.0)
        samples = [model.sample(rng, 0.0) for _ in range(300)]
        assert all(s <= 1.0 or 10.0 <= s <= 20.0 for s in samples)
        assert any(s > 1.0 for s in samples)  # some spikes happened
        assert model.max_delay == 20.0

    def test_spike_validation(self):
        with pytest.raises(ConfigurationError):
            SpikeDelay(FixedDelay(1.0), 1.5, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            SpikeDelay(FixedDelay(1.0), 0.5, 5.0, 1.0)

    @given(
        low=st.floats(min_value=0, max_value=10, allow_nan=False),
        span=st.floats(min_value=0, max_value=10, allow_nan=False),
        seed=st.integers(),
    )
    def test_uniform_property_sample_in_range(self, low, span, seed):
        model = UniformDelay(low, low + span)
        s = model.sample(random.Random(seed), 0.0)
        assert low <= s <= low + span


class TestReliableLink:
    def test_never_drops(self):
        rng = random.Random(0)
        link = ReliableLink(FixedDelay(1.0))
        for _ in range(100):
            assert link.plan(_msg(), 0.0, rng) == 1.0


class TestPartiallySynchronousLink:
    def test_post_gst_bounded(self):
        rng = random.Random(0)
        link = PartiallySynchronousLink(
            gst=10.0, pre_gst=UniformDelay(0, 100), post_gst=UniformDelay(0, 2)
        )
        for _ in range(200):
            assert link.plan(_msg(), 15.0, rng) <= 2.0

    def test_pre_gst_clamped_to_gst_plus_delta(self):
        rng = random.Random(0)
        link = PartiallySynchronousLink(
            gst=10.0, pre_gst=UniformDelay(50, 100), post_gst=UniformDelay(0, 2)
        )
        for now in (0.0, 5.0, 9.9):
            delay = link.plan(_msg(now), now, rng)
            assert now + delay <= 10.0 + link.delta + 1e-9

    def test_delta_property(self):
        link = PartiallySynchronousLink(gst=0.0, post_gst=UniformDelay(0, 3))
        assert link.delta == 3.0

    def test_requires_bounded_post_gst(self):
        with pytest.raises(ConfigurationError):
            PartiallySynchronousLink(gst=0.0, post_gst=ExponentialDelay(0, 1))

    def test_rejects_negative_gst(self):
        with pytest.raises(ConfigurationError):
            PartiallySynchronousLink(gst=-1.0)

    @given(
        now=st.floats(min_value=0, max_value=50, allow_nan=False),
        seed=st.integers(),
    )
    def test_every_message_arrives_by_gst_plus_delta_property(self, now, seed):
        link = PartiallySynchronousLink(
            gst=20.0, pre_gst=UniformDelay(0, 500), post_gst=UniformDelay(0, 2)
        )
        delay = link.plan(_msg(now), now, random.Random(seed))
        assert delay is not None
        assert now + delay <= max(now, 20.0) + link.delta + 1e-9


class TestFairLossyLink:
    def test_requires_exactly_one_discipline(self):
        with pytest.raises(ConfigurationError):
            FairLossyLink()
        with pytest.raises(ConfigurationError):
            FairLossyLink(loss_prob=0.5, deliver_every=2)

    def test_probabilistic_loss_rate(self):
        rng = random.Random(0)
        link = FairLossyLink(inner=ReliableLink(FixedDelay(1.0)), loss_prob=0.5)
        outcomes = [link.plan(_msg(), 0.0, rng) for _ in range(1000)]
        delivered = sum(1 for o in outcomes if o is not None)
        assert 400 < delivered < 600  # ~50%

    def test_loss_prob_one_rejected(self):
        with pytest.raises(ConfigurationError):
            FairLossyLink(loss_prob=1.0)

    def test_deterministic_every_k(self):
        rng = random.Random(0)
        link = FairLossyLink(
            inner=ReliableLink(FixedDelay(1.0)), deliver_every=3
        )
        outcomes = [link.plan(_msg(), 0.0, rng) for _ in range(9)]
        assert [o is not None for o in outcomes] == [
            False, False, True, False, False, True, False, False, True
        ]

    def test_deliver_every_validation(self):
        with pytest.raises(ConfigurationError):
            FairLossyLink(deliver_every=0)

    def test_fairness_infinite_sends_deliver_infinitely(self):
        # deterministic discipline: exactly 1 in k always gets through
        rng = random.Random(0)
        link = FairLossyLink(inner=ReliableLink(FixedDelay(1.0)), deliver_every=5)
        delivered = sum(
            1 for _ in range(500) if link.plan(_msg(), 0.0, rng) is not None
        )
        assert delivered == 100


class TestDeadLink:
    def test_drops_everything(self):
        rng = random.Random(0)
        assert DeadLink().plan(_msg(), 0.0, rng) is None
