"""Tests for the Message record."""

from repro.sim import Message


class TestMessage:
    def make(self, **kw):
        defaults = dict(src=0, dst=1, channel="c", payload="p", send_time=1.0)
        defaults.update(kw)
        return Message(**defaults)

    def test_fields(self):
        msg = self.make(tag="est", round=3)
        assert msg.src == 0 and msg.dst == 1
        assert msg.channel == "c"
        assert msg.tag == "est"
        assert msg.round == 3

    def test_self_message_detection(self):
        assert self.make(dst=0).is_self_message
        assert not self.make().is_self_message

    def test_ids_are_unique_and_increasing(self):
        a, b = self.make(), self.make()
        assert a.msg_id != b.msg_id
        assert b.msg_id > a.msg_id

    def test_frozen(self):
        import dataclasses

        import pytest

        msg = self.make()
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.src = 5  # type: ignore[misc]

    def test_optional_metadata_defaults(self):
        msg = self.make()
        assert msg.tag is None
        assert msg.round is None
