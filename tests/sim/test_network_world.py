"""Tests for Network routing/counters, failures and the World facade."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    Component,
    CrashEvent,
    CrashSchedule,
    DeadLink,
    FixedDelay,
    ReliableLink,
    World,
    crash_at,
    no_crashes,
    random_crashes,
)


class Sink(Component):
    channel = "sink"

    def __init__(self):
        super().__init__()
        self.messages = []

    def on_message(self, src, payload):
        self.messages.append((src, payload))


@pytest.fixture
def world():
    return World(n=4, seed=0, default_link=ReliableLink(FixedDelay(1.0)))


class TestNetwork:
    def test_counters(self, world):
        comps = world.attach_all(lambda pid: Sink())
        world.start()
        comps[0].send(1, "a")
        comps[0].send_self("b")
        world.run()
        net = world.network
        assert net.sent_total == 2
        assert net.sent_network == 1  # loopback excluded
        assert net.delivered_total == 2
        assert net.dropped_total == 0
        assert net.sent_by_channel == {"sink": 2}

    def test_per_pair_link_override(self, world):
        comps = world.attach_all(lambda pid: Sink())
        world.network.set_link(0, 1, DeadLink())
        world.start()
        comps[0].send(1, "lost")
        comps[0].send(2, "kept")
        world.run()
        assert comps[1].messages == []
        assert comps[2].messages == [(0, "kept")]
        assert world.network.dropped_total == 1

    def test_set_links_from_and_to(self, world):
        comps = world.attach_all(lambda pid: Sink())
        world.network.set_links_from(0, DeadLink)
        world.network.set_links_to(2, DeadLink)
        world.start()
        comps[0].send(1, "x")   # dead (from 0)
        comps[1].send(2, "y")   # dead (to 2)
        comps[1].send(3, "z")   # alive
        world.run()
        assert comps[1].messages == []
        assert comps[2].messages == []
        assert comps[3].messages == [(1, "z")]

    def test_link_lookup(self, world):
        dead = DeadLink()
        world.network.set_link(1, 2, dead)
        assert world.network.link(1, 2) is dead
        assert world.network.link(2, 1) is not dead

    def test_drop_recorded_in_trace(self, world):
        comps = world.attach_all(lambda pid: Sink())
        world.network.set_link(0, 1, DeadLink())
        world.start()
        comps[0].send(1, "x")
        world.run()
        drops = world.trace.select(kind="drop")
        assert len(drops) == 1
        assert drops[0].get("reason") == "link"

    def test_send_round_and_tag_in_trace(self, world):
        comps = world.attach_all(lambda pid: Sink())
        world.start()
        comps[0].send(1, "x", tag="est", round=3)
        world.run()
        send = world.trace.select(kind="send")[0]
        assert send.get("tag") == "est"
        assert send.get("round") == 3

    def test_network_requires_processes(self):
        with pytest.raises(ConfigurationError):
            World(n=0)


class TestWorld:
    def test_majority(self):
        assert World(n=5).majority == 3
        assert World(n=4).majority == 3
        assert World(n=1).majority == 1

    def test_pids(self, world):
        assert list(world.pids) == [0, 1, 2, 3]

    def test_double_start_rejected(self, world):
        world.start()
        with pytest.raises(ConfigurationError):
            world.start()

    def test_run_autostarts(self, world):
        comp = world.attach(0, Sink())
        world.run(until=1.0)
        assert world._started

    def test_correct_and_crashed_sets(self, world):
        world.schedule_crash(1, 5.0)
        world.run(until=10.0)
        assert world.crashed_pids == {1}
        assert world.correct_pids == {0, 2, 3}

    def test_crash_validation(self, world):
        with pytest.raises(ValueError):
            world.schedule_crash(99, 1.0)


class TestCrashSchedules:
    def test_no_crashes(self):
        sched = no_crashes()
        assert len(sched) == 0
        assert sched.crashed_pids == frozenset()
        assert sched.correct_pids(4) == {0, 1, 2, 3}

    def test_crash_at(self):
        sched = crash_at((1, 5.0), (2, 3.0))
        assert sched.crashed_pids == {1, 2}
        # sorted by time
        assert [e.pid for e in sched.events] == [2, 1]

    def test_double_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule([CrashEvent(1, 1.0), CrashEvent(1, 2.0)])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashSchedule([CrashEvent(1, -1.0)])

    def test_apply(self, world):
        crash_at((0, 2.0), (3, 4.0)).apply(world)
        world.run(until=10.0)
        assert world.crashed_pids == {0, 3}

    def test_random_crashes_respects_protect_and_bounds(self):
        import random
        for seed in range(20):
            rng = random.Random(seed)
            sched = random_crashes(rng, 7, 3, (0.0, 100.0), protect=[0, 1])
            assert len(sched) <= 3
            assert not sched.crashed_pids & {0, 1}
            assert all(0.0 <= e.time <= 100.0 for e in sched.events)

    def test_random_crashes_cannot_kill_all(self):
        import random
        with pytest.raises(ConfigurationError):
            random_crashes(random.Random(0), 3, 3, (0.0, 1.0))
