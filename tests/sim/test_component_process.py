"""Tests for Component, Periodic, Process and their crash semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Component, FixedDelay, ReliableLink, Sleep, World


class Recorder(Component):
    """Test component recording everything it sees."""

    channel = "rec"

    def __init__(self, channel="rec"):
        super().__init__(channel)
        self.messages = []
        self.started = False
        self.crashed_hook = False
        self.fd_changes = 0

    def on_start(self):
        self.started = True

    def on_message(self, src, payload):
        self.messages.append((src, payload))

    def on_crash(self):
        self.crashed_hook = True

    def on_fd_change(self):
        self.fd_changes += 1
        super().on_fd_change()


@pytest.fixture
def world():
    return World(n=3, seed=0, default_link=ReliableLink(FixedDelay(1.0)))


class TestComponentBasics:
    def test_requires_channel(self):
        class NoChannel(Component):
            channel = ""

        with pytest.raises(ConfigurationError):
            NoChannel()

    def test_channel_override_at_init(self, world):
        comp = world.attach(0, Recorder(channel="other"))
        assert comp.channel == "other"

    def test_properties(self, world):
        comp = world.attach(1, Recorder())
        assert comp.pid == 1
        assert comp.n == 3
        assert comp.now == 0.0
        assert not comp.crashed

    def test_send_and_receive(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        comps[0].send(1, "hello")
        world.run()
        assert comps[1].messages == [(0, "hello")]

    def test_broadcast_excludes_self_by_default(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        comps[0].broadcast("x")
        world.run()
        assert comps[0].messages == []
        assert comps[1].messages == [(0, "x")]
        assert comps[2].messages == [(0, "x")]

    def test_broadcast_include_self(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        comps[0].broadcast("x", include_self=True)
        world.run()
        assert comps[0].messages == [(0, "x")]

    def test_send_self_loopback_same_time(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        comps[0].send_self("me")
        world.run(until=0.0)
        assert comps[0].messages == [(0, "me")]

    def test_rng_is_deterministic_per_component(self, world):
        comp = world.attach(0, Recorder())
        w2 = World(n=3, seed=0)
        comp2 = w2.attach(0, Recorder())
        assert comp.rng.random() == comp2.rng.random()


class TestTimers:
    def test_set_timer_fires(self, world):
        comp = world.attach(0, Recorder())
        fired = []
        comp.set_timer(5.0, fired.append, "x")
        world.run()
        assert fired == ["x"]

    def test_timer_suppressed_after_crash(self, world):
        comp = world.attach(0, Recorder())
        fired = []
        comp.set_timer(5.0, fired.append, "x")
        world.schedule_crash(0, 1.0)
        world.run()
        assert fired == []

    def test_periodic_fires_repeatedly(self, world):
        comp = world.attach(0, Recorder())
        ticks = []
        comp.periodically(2.0, lambda: ticks.append(comp.now))
        world.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_periodic_stop(self, world):
        comp = world.attach(0, Recorder())
        ticks = []
        timer = comp.periodically(2.0, lambda: ticks.append(comp.now))
        world.scheduler.schedule(5.0, timer.stop)
        world.run(until=20.0)
        assert ticks == [2.0, 4.0]

    def test_periodic_stops_on_crash(self, world):
        comp = world.attach(0, Recorder())
        ticks = []
        comp.periodically(2.0, lambda: ticks.append(comp.now))
        world.schedule_crash(0, 5.0)
        world.run(until=20.0)
        assert ticks == [2.0, 4.0]

    def test_periodic_validation(self, world):
        comp = world.attach(0, Recorder())
        with pytest.raises(ConfigurationError):
            comp.periodically(0.0, lambda: None)
        with pytest.raises(ConfigurationError):
            comp.periodically(1.0, lambda: None, jitter=1.0)

    def test_periodic_jitter_within_bounds(self, world):
        comp = world.attach(0, Recorder())
        ticks = []
        comp.periodically(2.0, lambda: ticks.append(comp.now), jitter=0.5)
        world.run(until=30.0)
        gaps = [b - a for a, b in zip([0.0] + ticks, ticks)]
        assert all(1.5 <= g <= 2.5 for g in gaps)


class TestProcessCrash:
    def test_crash_is_permanent_and_idempotent(self, world):
        world.attach_all(lambda pid: Recorder())
        world.start()
        proc = world.process(0)
        world.crash(0)
        assert proc.crashed
        first_time = proc.crash_time
        world.crash(0)
        assert proc.crash_time == first_time
        assert world.trace.count("crash") == 1

    def test_messages_to_crashed_are_dropped(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        world.crash(1)
        comps[0].send(1, "too late")
        world.run()
        assert comps[1].messages == []
        drops = world.trace.select(kind="drop", where=lambda e: e.get("reason") == "crashed")
        assert len(drops) == 1

    def test_in_flight_messages_from_crashed_still_arrive(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        comps[0].send(1, "sent before crash")
        world.crash(0)
        world.run()
        assert comps[1].messages == [(0, "sent before crash")]

    def test_sends_after_crash_are_noops(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        world.crash(0)
        comps[0].send(1, "x")
        comps[0].broadcast("y")
        world.run()
        assert comps[1].messages == []

    def test_crash_stops_tasks_and_calls_hook(self, world):
        comp = world.attach(0, Recorder())
        log = []

        def task():
            yield Sleep(10.0)
            log.append("no")

        comp.spawn(task())
        world.schedule_crash(0, 1.0)
        world.run()
        assert log == []
        assert comp.crashed_hook

    def test_crashed_property_reflected_on_component(self, world):
        comp = world.attach(0, Recorder())
        world.crash(0)
        assert comp.crashed


class TestProcessWiring:
    def test_duplicate_channel_rejected(self, world):
        world.attach(0, Recorder())
        with pytest.raises(ConfigurationError):
            world.attach(0, Recorder())

    def test_unknown_channel_parks_until_attached(self, world):
        comps = world.attach_all(lambda pid: Recorder())
        world.start()
        world.network.send(0, 1, "late-channel", "x")
        world.run()
        proc = world.process(1)
        assert proc.pending_channels == ["late-channel"]
        late = world.attach(1, Recorder(channel="late-channel"))
        # The flush is deferred one scheduler tick so companion components
        # attached at the same instant can subscribe first.
        assert late.messages == []
        world.run()
        assert late.messages == [(0, "x")]
        assert proc.pending_channels == []

    def test_parked_flush_after_companion_subscription(self, world):
        """The race that motivated the deferred flush: a broadcast-style
        component and its subscriber attached back to back must both see a
        message that was parked before either existed."""
        world.start()
        world.network.send(0, 1, "bus", "event")
        world.run()
        bus = world.attach(1, Recorder(channel="bus"))
        follower = []
        # Simulate a subscriber wired immediately after the attach.
        original = bus.on_message
        bus.on_message = lambda src, payload: (original(src, payload),
                                               follower.append(payload))
        world.run()
        assert bus.messages == [(0, "event")]
        assert follower == ["event"]

    def test_component_lookup(self, world):
        comp = world.attach(2, Recorder())
        assert world.component(2, "rec") is comp
        assert world.process(2).component("rec") is comp

    def test_attach_after_start_calls_on_start(self, world):
        world.start()
        comp = world.attach(0, Recorder())
        assert comp.started

    def test_notify_fd_change_skips_source(self, world):
        a = world.attach(0, Recorder(channel="a"))
        b = world.attach(0, Recorder(channel="b"))
        world.start()
        world.process(0).notify_fd_change(source=a)
        assert a.fd_changes == 0
        assert b.fd_changes == 1

    def test_notify_fd_change_noop_when_crashed(self, world):
        a = world.attach(0, Recorder(channel="a"))
        world.crash(0)
        world.process(0).notify_fd_change()
        assert a.fd_changes == 0
