"""Tests for the dynamic network controller (partitions, degradation)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    Component,
    FixedDelay,
    NetworkController,
    ReliableLink,
    World,
)


class Sink(Component):
    channel = "sink"

    def __init__(self):
        super().__init__()
        self.messages = []

    def on_message(self, src, payload):
        self.messages.append((src, payload, self.now))


@pytest.fixture
def setup():
    world = World(n=4, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
    comps = world.attach_all(lambda pid: Sink())
    controller = NetworkController(world)
    world.start()
    return world, comps, controller


class TestPartition:
    def test_cross_group_messages_dropped(self, setup):
        world, comps, ctl = setup
        ctl.partition([0, 1], [2, 3])
        comps[0].send(1, "same-side")
        comps[0].send(2, "other-side")
        world.run()
        assert comps[1].messages[0][:2] == (0, "same-side")
        assert comps[2].messages == []

    def test_heal_restores_traffic(self, setup):
        world, comps, ctl = setup
        ctl.partition([0], [1, 2, 3])
        assert ctl.partitioned
        ctl.heal()
        assert not ctl.partitioned
        comps[0].send(2, "after-heal")
        world.run()
        assert comps[2].messages[0][:2] == (0, "after-heal")

    def test_implicit_rest_group(self, setup):
        world, comps, ctl = setup
        ctl.partition([0, 1])  # 2, 3 form the implicit rest group
        comps[2].send(3, "rest-to-rest")
        comps[2].send(0, "rest-to-named")
        world.run()
        assert comps[3].messages[0][1] == "rest-to-rest"
        assert comps[0].messages == []

    def test_isolate(self, setup):
        world, comps, ctl = setup
        ctl.isolate(3)
        comps[3].send(0, "trapped")
        comps[0].send(3, "unreachable")
        comps[0].send(1, "fine")
        world.run()
        assert comps[0].messages == []
        assert comps[3].messages == []
        assert len(comps[1].messages) == 1

    def test_partition_window_scheduling(self, setup):
        world, comps, ctl = setup
        ctl.partition_between(5.0, 10.0, [0, 1])
        world.scheduler.schedule_at(6.0, lambda: comps[0].send(2, "during"))
        world.scheduler.schedule_at(11.0, lambda: comps[0].send(2, "after"))
        world.run()
        assert [m[1] for m in comps[2].messages] == ["after"]

    def test_validation(self, setup):
        world, comps, ctl = setup
        with pytest.raises(ConfigurationError):
            ctl.partition([0, 1], [1, 2])  # overlapping
        with pytest.raises(ConfigurationError):
            ctl.partition([99])

    def test_partition_recorded_in_trace(self, setup):
        world, comps, ctl = setup
        ctl.partition([0], [1, 2, 3])
        ctl.heal()
        assert world.trace.count("partition") == 1
        assert world.trace.count("heal") == 1


class TestDegrade:
    def test_degrade_changes_delay(self, setup):
        world, comps, ctl = setup
        ctl.degrade(0, 1, ReliableLink(FixedDelay(20.0)))
        comps[0].send(1, "slow")
        world.run()
        assert comps[1].messages[0][2] == 20.0

    def test_restore(self, setup):
        world, comps, ctl = setup
        ctl.degrade(0, 1, ReliableLink(FixedDelay(20.0)))
        ctl.restore(0, 1)
        comps[0].send(1, "fast-again")
        world.run()
        assert comps[1].messages[0][2] == 1.0

    def test_degrade_window(self, setup):
        world, comps, ctl = setup
        ctl.degrade_between(5.0, 10.0, 0, 1, ReliableLink(FixedDelay(50.0)))
        world.scheduler.schedule_at(6.0, lambda: comps[0].send(1, "slow"))
        world.scheduler.schedule_at(12.0, lambda: comps[0].send(1, "fast"))
        world.run()
        arrival = {m[1]: m[2] for m in comps[1].messages}
        assert arrival["slow"] == 56.0
        assert arrival["fast"] == 13.0


class TestPartitionWithDetectors:
    def test_fd_false_suspicions_during_partition_then_recovery(self):
        """A partition makes the heartbeat detector falsely suspect the
        other side; healing restores accuracy — the ◇-style guarantee."""
        from repro.fd import HeartbeatEventuallyPerfect

        world = World(n=4, seed=1, default_link=ReliableLink(FixedDelay(1.0)))
        dets = world.attach_all(
            lambda pid: HeartbeatEventuallyPerfect(initial_timeout=8.0)
        )
        ctl = NetworkController(world)
        ctl.partition_between(40.0, 120.0, [0, 1], [2, 3])
        world.run(until=600.0)
        # During the partition, suspicion across the split appeared...
        during = world.trace.select(
            kind="fd", after=40.0, before=120.0,
            where=lambda e: e.pid in (0, 1) and (
                2 in e.get("suspected") or 3 in e.get("suspected")),
        )
        assert during
        # ...and after healing (plus adaptation) everyone is clear again.
        assert all(det.suspected() == frozenset() for det in dets)
