"""World-level trace configuration (kind filtering / disabling)."""

from repro.fd import HeartbeatEventuallyPerfect
from repro.sim import FixedDelay, ReliableLink, World


def run_world(**kwargs):
    world = World(
        n=3, seed=0, default_link=ReliableLink(FixedDelay(1.0)), **kwargs
    )
    world.attach_all(lambda pid: HeartbeatEventuallyPerfect(period=5.0))
    world.schedule_crash(2, 20.0)
    world.run(until=60.0)
    return world


class TestTraceOptions:
    def test_default_records_everything(self):
        world = run_world()
        assert world.trace.count("send") > 0
        assert world.trace.count("fd") > 0
        assert world.trace.count("crash") == 1

    def test_kind_filtering(self):
        world = run_world(trace_kinds=["crash", "fd"])
        assert world.trace.count("send") == 0
        assert world.trace.count("fd") > 0
        assert world.trace.count("crash") == 1

    def test_disabled_trace_records_nothing_but_sim_still_works(self):
        world = run_world(trace_enabled=False)
        assert len(world.trace) == 0
        # The detector still functions: p2 crashed and is suspected.
        det = world.component(0, "fd")
        assert det.suspected() == {2}

    def test_filtering_reduces_memory(self):
        full = run_world()
        slim = run_world(trace_kinds=["crash"])
        assert len(slim.trace) < len(full.trace)

    def test_counters_independent_of_trace(self):
        """Network counters work even with tracing off (benchmarks rely on
        this when they disable traces for speed)."""
        world = run_world(trace_enabled=False)
        assert world.network.sent_network > 0
        assert world.network.delivered_total > 0
