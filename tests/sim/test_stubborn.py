"""Tests for stubborn-channel retransmission (Component opt-in)."""

import pytest

from repro.sim import (
    Component,
    FixedDelay,
    NetworkController,
    ReliableLink,
    World,
)


class Chatter(Component):
    channel = "chat"

    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.now, src, payload))


@pytest.fixture
def setup():
    world = World(n=3, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
    comps = world.attach_all(lambda pid: Chatter())
    ctl = NetworkController(world)
    world.start()
    return world, comps, ctl


class TestStubbornResend:
    def test_off_by_default(self, setup):
        world, comps, ctl = setup
        comps[0].send(1, ("hello", None), tag="t")
        world.run(until=50.0)
        assert len(comps[1].received) == 1

    def test_retransmits_last_message_per_tag(self, setup):
        world, comps, ctl = setup
        comps[0].enable_stubborn_resend(5.0)
        comps[0].send(1, "m", tag="a")
        world.run(until=21.0)
        # original + retransmissions at 5, 10, 15, 20
        assert len(comps[1].received) == 5
        assert all(payload == "m" for _, _, payload in comps[1].received)

    def test_newer_message_replaces_slot(self, setup):
        world, comps, ctl = setup
        comps[0].enable_stubborn_resend(5.0)
        comps[0].send(1, "old", tag="a")
        world.scheduler.schedule_at(7.0, lambda: comps[0].send(1, "new", tag="a"))
        world.run(until=30.0)
        payloads = [p for _, _, p in comps[1].received]
        assert payloads[0] == "old"
        assert payloads[-1] == "new"
        # After the replacement only "new" is retransmitted.
        assert "old" not in payloads[3:]

    def test_separate_tags_keep_separate_slots(self, setup):
        world, comps, ctl = setup
        comps[0].enable_stubborn_resend(5.0)
        comps[0].send(1, "first-stream", tag="coord")
        comps[0].send(1, "second-stream", tag="prop")
        world.run(until=12.0)
        payloads = {p for _, _, p in comps[1].received}
        assert payloads == {"first-stream", "second-stream"}
        # Both streams retransmitted (>= 2 copies each).
        all_payloads = [p for _, _, p in comps[1].received]
        assert all_payloads.count("first-stream") >= 2
        assert all_payloads.count("second-stream") >= 2

    def test_survives_partition(self, setup):
        """The whole point: a message lost to a partition arrives after
        healing thanks to retransmission."""
        world, comps, ctl = setup
        comps[0].enable_stubborn_resend(5.0)
        ctl.partition([0], [1, 2])
        comps[0].send(1, "through-the-cut", tag="x")
        world.run(until=20.0)
        assert comps[1].received == []
        ctl.heal()
        world.run(until=40.0)
        assert comps[1].received
        assert comps[1].received[0][2] == "through-the-cut"

    def test_idempotent_enable(self, setup):
        world, comps, ctl = setup
        comps[0].enable_stubborn_resend(5.0)
        comps[0].enable_stubborn_resend(5.0)  # no double timers
        comps[0].send(1, "m", tag="a")
        world.run(until=11.0)
        assert len(comps[1].received) == 3  # original + 2, not + 4

    def test_stops_on_crash(self, setup):
        world, comps, ctl = setup
        comps[0].enable_stubborn_resend(5.0)
        comps[0].send(1, "m", tag="a")
        world.schedule_crash(0, 7.0)
        world.run(until=40.0)
        assert len(comps[1].received) == 2  # original + one retransmit at 5
