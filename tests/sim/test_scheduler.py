"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Scheduler


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Scheduler().now == 0.0

    def test_fires_in_time_order(self):
        sched = Scheduler()
        fired = []
        sched.schedule(3.0, fired.append, "c")
        sched.schedule(1.0, fired.append, "a")
        sched.schedule(2.0, fired.append, "b")
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sched = Scheduler()
        fired = []
        for label in "abcde":
            sched.schedule(1.0, fired.append, label)
        sched.run()
        assert fired == list("abcde")

    def test_time_advances_to_event_time(self):
        sched = Scheduler()
        seen = []
        sched.schedule(5.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [5.0]

    def test_schedule_at_absolute_time(self):
        sched = Scheduler()
        seen = []
        sched.schedule_at(7.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [7.0]

    def test_rejects_past_scheduling(self):
        sched = Scheduler()
        sched.schedule(5.0, lambda: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule_at(1.0, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule(-1.0, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sched = Scheduler()
        fired = []

        def outer():
            fired.append(("outer", sched.now))
            sched.schedule(2.0, inner)

        def inner():
            fired.append(("inner", sched.now))

        sched.schedule(1.0, outer)
        sched.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_zero_delay_fires_after_current_event(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, lambda: (fired.append("first"),
                                     sched.schedule(0.0, fired.append, "zero")))
        sched.schedule(1.0, fired.append, "second")
        sched.run()
        assert fired == ["first", "second", "zero"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        fired = []
        handle = sched.schedule(1.0, fired.append, "x")
        handle.cancel()
        sched.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sched = Scheduler()
        handle = sched.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sched.run() == 0

    def test_pending_count_excludes_cancelled(self):
        sched = Scheduler()
        handles = [sched.schedule(1.0, lambda: None) for _ in range(4)]
        handles[0].cancel()
        handles[2].cancel()
        assert sched.pending_count == 2

    def test_compact_removes_cancelled(self):
        sched = Scheduler()
        keep = sched.schedule(2.0, lambda: None)
        for _ in range(10):
            sched.schedule(1.0, lambda: None).cancel()
        sched.compact()
        assert len(sched._heap) == 1
        assert sched._heap[0] is keep


class TestRunLimits:
    def test_run_until_stops_and_advances_clock(self):
        sched = Scheduler()
        fired = []
        sched.schedule(1.0, fired.append, "a")
        sched.schedule(10.0, fired.append, "b")
        sched.run(until=5.0)
        assert fired == ["a"]
        assert sched.now == 5.0
        sched.run()
        assert fired == ["a", "b"]

    def test_max_events(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.schedule(float(i + 1), fired.append, i)
        assert sched.run(max_events=3) == 3
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_events_fired_counter(self):
        sched = Scheduler()
        for i in range(5):
            sched.schedule(1.0, lambda: None)
        sched.run()
        assert sched.events_fired == 5

    def test_run_empty_returns_zero(self):
        assert Scheduler().run() == 0


class TestDeterminismProperty:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_any_delay_set_fires_in_sorted_stable_order(self, delays):
        sched = Scheduler()
        fired = []
        for i, d in enumerate(delays):
            sched.schedule(d, fired.append, (d, i))
        sched.run()
        # Stable sort by time: equal times keep insertion order.
        assert fired == sorted(
            [(d, i) for i, d in enumerate(delays)], key=lambda x: (x[0], x[1])
        )

    @given(st.integers(min_value=1, max_value=30))
    def test_chained_scheduling_advances_monotonically(self, n):
        sched = Scheduler()
        times = []

        def tick(remaining):
            times.append(sched.now)
            if remaining:
                sched.schedule(1.0, tick, remaining - 1)

        sched.schedule(0.0, tick, n)
        sched.run()
        assert times == [float(i) for i in range(n + 1)]
