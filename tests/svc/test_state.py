"""KVStateMachine units: operations, locks, and exactly-once dedup."""

from repro.net.codec import default_codec
from repro.svc.state import KVStateMachine


def cmd(op, client="c", seq=None, **rest):
    command = {"op": op, "client": client, "seq": seq}
    command.update(rest)
    return command


def fresh(machine, op, client="c", seq=None, **rest):
    """Apply a command expected to execute (not dedup); returns the result."""
    result, duplicate = machine.apply(cmd(op, client=client, seq=seq, **rest))
    assert duplicate is False
    return result


# ------------------------------------------------------------------ operations
def test_kv_operations():
    m = KVStateMachine()
    assert fresh(m, "get", seq=0, key="k") == {
        "ok": True, "value": None, "found": False}
    assert fresh(m, "put", seq=1, key="k", value=7) == {"ok": True, "value": 7}
    assert fresh(m, "get", seq=2, key="k") == {
        "ok": True, "value": 7, "found": True}
    assert fresh(m, "cas", seq=3, key="k", expect=0, value=9) == {
        "ok": False, "error": "cas-mismatch", "value": 7}
    assert fresh(m, "cas", seq=4, key="k", expect=7, value=9) == {
        "ok": True, "value": 9}
    assert fresh(m, "delete", seq=5, key="k") == {"ok": True, "found": True}
    assert fresh(m, "delete", seq=6, key="k") == {"ok": True, "found": False}
    assert fresh(m, "bogus", seq=7, key="k") == {
        "ok": False, "error": "unknown-op:bogus"}
    assert fresh(m, "put", seq=8)["error"] == "missing-key"


def test_locks_are_per_session_and_idempotent():
    m = KVStateMachine()
    assert fresh(m, "acquire", client="a", seq=0, key="L")["ok"]
    # Re-acquire by the owner is idempotent, not an error.
    assert fresh(m, "acquire", client="a", seq=1, key="L")["ok"]
    held = fresh(m, "acquire", client="b", seq=0, key="L")
    assert held == {"ok": False, "error": "lock-held", "owner": "a"}
    not_owner = fresh(m, "release", client="b", seq=1, key="L")
    assert not_owner["error"] == "not-owner"
    assert fresh(m, "release", client="a", seq=2, key="L") == {"ok": True}
    assert m.locks == {}


# ----------------------------------------------------------------- exactly-once
def test_replayed_seq_returns_cached_result_without_mutating():
    m = KVStateMachine()
    original, duplicate = m.apply(cmd("put", seq=0, key="k", value=1))
    assert duplicate is False
    # The log can carry a retried command twice; the second copy must not
    # execute, only answer with the original's cached result.
    replay, duplicate = m.apply(cmd("put", seq=0, key="k", value=1))
    assert duplicate is True
    assert replay == original
    assert m.applied == 1
    assert m.store == {"k": 1}


def test_stale_seq_is_rejected_and_gaps_are_tolerated():
    m = KVStateMachine()
    m.apply(cmd("put", seq=5, key="k", value=5))
    # seq 3 < 5: its client abandoned it before issuing newer commands.
    stale, duplicate = m.apply(cmd("put", seq=3, key="k", value=3))
    assert duplicate is True
    assert stale == {"ok": False, "error": "stale-seq"}
    assert m.store == {"k": 5}
    # A gap (5 -> 9) executes: clients may abandon timed-out commands.
    result, duplicate = m.apply(cmd("put", seq=9, key="k", value=9))
    assert duplicate is False and result["ok"]


def test_sessions_are_independent():
    m = KVStateMachine()
    m.apply(cmd("put", client="a", seq=0, key="k", value="a0"))
    result, duplicate = m.apply(cmd("put", client="b", seq=0, key="k",
                                    value="b0"))
    assert duplicate is False
    assert result["ok"]
    assert m.store == {"k": "b0"}


def test_cached_answers_only_the_last_seq():
    m = KVStateMachine()
    m.apply(cmd("put", seq=0, key="k", value=1))
    assert m.cached("c", 0) == {"ok": True, "value": 1}
    assert m.cached("c", 1) is None
    assert m.cached("nobody", 0) is None
    assert m.cached("c", None) is None
    m.apply(cmd("put", seq=1, key="k", value=2))
    assert m.cached("c", 0) is None  # only the latest seq stays cached


def test_sessionless_commands_execute_unconditionally():
    m = KVStateMachine()
    for _ in range(2):
        result, duplicate = m.apply({"op": "put", "key": "k", "value": 1})
        assert duplicate is False and result["ok"]
    assert m.applied == 2


def test_dump_is_codec_safe_and_detached():
    m = KVStateMachine()
    m.apply(cmd("put", seq=0, key="k", value=[1, 2]))
    m.apply(cmd("acquire", seq=1, key="L"))
    dump = m.dump()
    codec = default_codec()
    assert codec.decode_payload(codec.encode_payload(dump)) == dump
    dump["store"]["k"] = "tampered"
    assert m.store["k"] == [1, 2]
