"""Wire protocol units: framing and Request/Reply codec round-trips."""

import asyncio

import pytest

from repro.net.codec import default_codec
from repro.svc.protocol import (
    MAX_FRAME,
    ProtocolError,
    Reply,
    Request,
    encode_frame,
    read_frame,
)

CODEC = default_codec()


def roundtrip_frames(*frames: bytes):
    """Feed raw bytes to a StreamReader and read frames back."""

    async def run():
        reader = asyncio.StreamReader()
        for frame in frames:
            reader.feed_data(frame)
        reader.feed_eof()
        out = []
        while True:
            payload = await read_frame(reader, CODEC)
            if payload is None:
                return out
            out.append(payload)

    return asyncio.run(run())


# ---------------------------------------------------------------- dataclasses
def test_request_roundtrips_through_the_codec():
    request = Request(rid=7, client="c1", op="cas", seq=3,
                      key="k", value=[1, 2], expect={"a": 1})
    body = CODEC.encode_payload(request.to_payload())
    decoded = Request.from_payload(CODEC.decode_payload(body))
    assert decoded == request


def test_reply_roundtrips_through_the_codec():
    reply = Reply(rid=9, status="redirect", leader=2,
                  addr=("127.0.0.1", 4242))
    body = CODEC.encode_payload(reply.to_payload())
    decoded = Reply.from_payload(CODEC.decode_payload(body))
    assert decoded == reply
    ok = Reply(rid=1, status="ok", result={"ok": True, "value": "v"})
    assert Reply.from_payload(ok.to_payload()) == ok


def test_malformed_payloads_raise_protocol_error():
    with pytest.raises(ProtocolError):
        Request.from_payload(["not", "a", "dict"])
    with pytest.raises(ProtocolError):
        Request.from_payload({"client": "c", "op": "get"})  # no rid
    with pytest.raises(ProtocolError):
        Reply.from_payload({"rid": 1})  # no status
    with pytest.raises(ProtocolError):
        Reply.from_payload(None)


def test_command_is_rid_free_and_retry_stable():
    # A retry gets a fresh rid but must submit the identical log payload,
    # or the state machine could not recognize it as the same command.
    first = Request(rid=1, client="c", op="put", seq=0, key="k", value=5)
    retry = Request(rid=2, client="c", op="put", seq=0, key="k", value=5)
    assert first.command() == retry.command()
    assert "rid" not in first.command()


# -------------------------------------------------------------------- framing
def test_frame_roundtrip_single_and_back_to_back():
    a = Request(rid=1, client="c", op="get", seq=0, key="k").to_payload()
    b = Reply(rid=1, status="ok", result={"ok": True}).to_payload()
    frames = roundtrip_frames(encode_frame(CODEC, a), encode_frame(CODEC, b))
    assert frames == [a, b]


def test_split_delivery_reassembles():
    payload = Request(rid=3, client="c", op="put", seq=1,
                      key="k", value="x" * 100).to_payload()
    frame = encode_frame(CODEC, payload)

    async def run():
        reader = asyncio.StreamReader()
        # Deliver byte-by-byte; readexactly must reassemble.
        for i in range(len(frame)):
            reader.feed_data(frame[i:i + 1])
        reader.feed_eof()
        return await read_frame(reader, CODEC)

    assert asyncio.run(run()) == payload


def test_clean_eof_returns_none_mid_frame_too():
    frame = encode_frame(CODEC, {"rid": 1, "x": 1})
    assert roundtrip_frames() == []
    # A torn frame (EOF mid-body) is also reported as end-of-stream.
    assert roundtrip_frames(frame[: len(frame) - 2]) == []


def test_oversize_frames_are_protocol_errors():
    with pytest.raises(ProtocolError):
        encode_frame(CODEC, {"blob": "x" * (MAX_FRAME + 1)})

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data((MAX_FRAME + 1).to_bytes(4, "big") + b"zzzz")
        with pytest.raises(ProtocolError):
            await read_frame(reader, CODEC)

    asyncio.run(run())


def test_undecodable_body_is_a_protocol_error():
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data((4).to_bytes(4, "big") + b"\xff\xfe\xfd\xfc")
        with pytest.raises(ProtocolError):
            await read_frame(reader, CODEC)

    asyncio.run(run())


def test_unencodable_payload_is_a_protocol_error():
    with pytest.raises(ProtocolError):
        encode_frame(CODEC, {"bad": object()})
