"""KVClient units against a scriptable fake frontend.

The fake speaks the real wire protocol over real loopback sockets but
answers from a handler function, so redirect/retry/stale-reply behaviour
is tested without booting a cluster.
"""

import asyncio
import random

import pytest

from repro.net.codec import default_codec
from repro.svc.client import KVClient, ServiceUnavailable
from repro.svc.protocol import Reply, Request, encode_frame, read_frame

CODEC = default_codec()


class FakeFrontend:
    """One scripted server: ``handler(request)`` returns a Reply, a list
    of Replies (all written back), or None (swallow — simulate a hang)."""

    def __init__(self, handler):
        self.handler = handler
        self.requests = []
        self.server = None
        self.addr = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._accept, host="127.0.0.1", port=0)
        self.addr = self.server.sockets[0].getsockname()[:2]
        return self

    async def _accept(self, reader, writer):
        while True:
            payload = await read_frame(reader, CODEC)
            if payload is None:
                break
            request = Request.from_payload(payload)
            self.requests.append(request)
            replies = self.handler(request)
            if replies is None:
                continue
            if isinstance(replies, Reply):
                replies = [replies]
            for reply in replies:
                writer.write(encode_frame(CODEC, reply.to_payload()))
            await writer.drain()
        writer.close()

    async def close(self):
        self.server.close()
        await self.server.wait_closed()


def ok(request, **result):
    return Reply(rid=request.rid, status="ok",
                 result={"ok": True, **result})


def make_client(addrs, **kwargs):
    kwargs.setdefault("request_timeout", 0.5)
    kwargs.setdefault("backoff_initial", 0.01)
    kwargs.setdefault("seed", 0)
    return KVClient(addrs, client_id="t", **kwargs)


def first_target(n, seed=0):
    """Which of *n* addresses a seed-0 client dials first (same draw)."""
    return random.Random(seed).randrange(n)


# ------------------------------------------------------------------ redirects
def test_client_follows_redirect_to_the_leader():
    async def run():
        leader = await FakeFrontend(lambda r: ok(r, value=42)).start()
        follower = await FakeFrontend(
            lambda r: Reply(rid=r.rid, status="redirect", leader=0,
                            addr=leader.addr)
        ).start()
        client = make_client([follower.addr])
        result = await client.get("k")
        await client.close()
        await leader.close()
        await follower.close()
        return result, client, follower.requests, leader.requests

    result, client, follower_saw, leader_saw = asyncio.run(run())
    assert result == {"ok": True, "value": 42}
    assert client.redirects == 1
    # The redirected resend carries the same session sequence number.
    assert [r.seq for r in follower_saw] == [r.seq for r in leader_saw]


def test_leaderless_redirect_rotates_to_the_next_address():
    async def run():
        lost = await FakeFrontend(
            lambda r: Reply(rid=r.rid, status="redirect", leader=None)
        ).start()
        settled = await FakeFrontend(lambda r: ok(r, value="v")).start()
        # Order the address list so the client's first draw hits `lost`.
        addrs = [None, None]
        start = first_target(2)
        addrs[start] = lost.addr
        addrs[1 - start] = settled.addr
        client = make_client(addrs)
        result = await client.put("k", "v")
        await client.close()
        await lost.close()
        await settled.close()
        return result, client

    result, client = asyncio.run(run())
    assert result == {"ok": True, "value": "v"}
    assert client.redirects == 1


def test_leaderless_redirects_poll_fixed_without_burning_attempts():
    # Pre-election convergence answers `redirect` with no leader for a
    # while.  The client must poll on the fixed redirect_poll cadence —
    # not the exponential failure backoff (the udp/n3 p95 anomaly was
    # elections inheriting 0.05→0.1→0.2→0.4→0.8 s of backoff) — and the
    # polls must not consume the retry attempt budget.
    leaderless = 8  # > max_attempts below

    def handler(request, state={"calls": 0}):
        state["calls"] += 1
        if state["calls"] <= leaderless:
            return Reply(rid=request.rid, status="redirect", leader=None)
        return ok(request, value="v")

    async def run():
        server = await FakeFrontend(handler).start()
        client = make_client(
            [server.addr], max_attempts=3, redirect_poll=0.01,
            request_timeout=5.0,
        )
        import time
        started = time.monotonic()
        result = await client.put("k", "v")
        elapsed = time.monotonic() - started
        await client.close()
        await server.close()
        return result, client, elapsed

    result, client, elapsed = asyncio.run(run())
    assert result == {"ok": True, "value": "v"}
    assert client.redirects == leaderless
    # 8 polls at 10 ms each; the old shared backoff would have slept
    # 0.01+0.02+0.04+... plus burned max_attempts=3 long before success.
    assert elapsed < 1.0


def test_leaderless_polling_is_bounded_by_request_timeout():
    async def run():
        server = await FakeFrontend(
            lambda r: Reply(rid=r.rid, status="redirect", leader=None)
        ).start()
        client = make_client(
            [server.addr], request_timeout=0.15, redirect_poll=0.01,
        )
        with pytest.raises(ServiceUnavailable):
            await client.put("k", 1)
        await client.close()
        await server.close()

    asyncio.run(run())


# -------------------------------------------------------------------- retries
def test_timeout_retries_under_the_same_seq():
    def handler(request, state={"calls": 0}):
        state["calls"] += 1
        if state["calls"] == 1:
            return None  # swallow the first attempt: client must time out
        return ok(request)

    async def run():
        server = await FakeFrontend(handler).start()
        client = make_client([server.addr], request_timeout=0.2)
        result = await client.put("k", 1)
        await client.close()
        await server.close()
        return result, client, server.requests

    result, client, saw = asyncio.run(run())
    assert result["ok"]
    assert client.retries == 1
    assert len(saw) == 2
    # Exactly-once: fresh rid per attempt, one seq for the whole command.
    assert saw[0].rid != saw[1].rid
    assert saw[0].seq == saw[1].seq


def test_apply_timeout_reply_is_retried_same_seq():
    def handler(request, state={"calls": 0}):
        state["calls"] += 1
        if state["calls"] == 1:
            return Reply(rid=request.rid, status="error",
                         error="apply-timeout")
        return ok(request)

    async def run():
        server = await FakeFrontend(handler).start()
        client = make_client([server.addr])
        result = await client.put("k", 1)
        await client.close()
        await server.close()
        return result, server.requests

    result, saw = asyncio.run(run())
    assert result["ok"]
    assert [r.seq for r in saw] == [saw[0].seq, saw[0].seq]


def test_stale_replies_are_discarded_by_rid():
    def handler(request):
        stale = Reply(rid=request.rid - 1, status="ok",
                      result={"ok": True, "value": "stale"})
        return [stale, ok(request, value="fresh")]

    async def run():
        server = await FakeFrontend(handler).start()
        client = make_client([server.addr])
        result = await client.get("k")
        await client.close()
        await server.close()
        return result

    assert asyncio.run(run()) == {"ok": True, "value": "fresh"}


# ---------------------------------------------------------------- negotiation
def test_no_codec_offer_when_default_is_already_preferred():
    # On a host whose preference list starts with the configured codec
    # (every pure-Python host: ["json"]), requests carry no offer at all —
    # old servers see byte-identical traffic.
    async def run():
        server = await FakeFrontend(lambda r: ok(r)).start()
        client = make_client([server.addr])
        await client.get("k")
        await client.close()
        await server.close()
        return server.requests

    saw = asyncio.run(run())
    if client_preferences() == ["json"]:
        assert all(r.codecs is None for r in saw)


def client_preferences():
    from repro.net.codec import wire_preferences

    return wire_preferences()


def test_negotiation_upgrades_the_connection_codec(monkeypatch):
    # A client that would rather speak msgpack offers it on the first
    # request of a connection; the server answers in the arrival codec,
    # names its pick in reply.codec, and both sides switch in lockstep.
    from repro.svc import client as client_mod

    monkeypatch.setattr(
        client_mod, "wire_preferences", lambda: ["msgpack", "json"]
    )
    json_codec = default_codec(prefer="json")
    msgpack_codec = default_codec(prefer="msgpack")
    saw = []

    async def accept(reader, writer):
        codec = json_codec
        while True:
            payload = await read_frame(reader, codec)
            if payload is None:
                break
            request = Request.from_payload(payload)
            saw.append((codec.name, request.codecs))
            reply = Reply(
                rid=request.rid, status="ok",
                result={"ok": True, "echo": request.value},
            )
            if request.codecs and codec.name != "msgpack":
                reply.codec = "msgpack"
                writer.write(encode_frame(codec, reply.to_payload()))
                await writer.drain()
                codec = msgpack_codec
                continue
            writer.write(encode_frame(codec, reply.to_payload()))
            await writer.drain()
        writer.close()

    async def run():
        server = await asyncio.start_server(
            accept, host="127.0.0.1", port=0
        )
        addr = server.sockets[0].getsockname()[:2]
        client = make_client([addr])
        first = await client.put("k", 1)
        second = await client.put("k", 2)
        conn_codec = client._conn_codec.name
        await client.close()
        server.close()
        await server.wait_closed()
        return first, second, conn_codec

    first, second, conn_codec = asyncio.run(run())
    assert first["ok"] and second["ok"]
    assert second["echo"] == 2  # the msgpack leg really round-trips
    assert conn_codec == "msgpack"
    # Offer on the first request only; the second rides the upgrade.
    assert saw == [("json", ["msgpack", "json"]), ("msgpack", None)]


def test_frontend_negotiate_picks_first_shared_preference(monkeypatch):
    from repro.svc import frontend as frontend_mod
    from repro.svc.frontend import ServiceFrontend

    monkeypatch.setattr(
        frontend_mod, "wire_preferences", lambda: ["msgpack", "json"]
    )
    json_codec = default_codec(prefer="json")
    pick = ServiceFrontend._negotiate(None, ["msgpack", "json"], json_codec)
    assert pick is not None and pick.name == "msgpack"
    # Already speaking the best shared format: stay put.
    assert ServiceFrontend._negotiate(None, ["json"], json_codec) is None
    # Nothing shared (unknown formats): stay put.
    assert ServiceFrontend._negotiate(None, ["protobuf"], json_codec) is None


# --------------------------------------------------------------------- errors
def test_definitive_errors_are_not_retried():
    async def run():
        server = await FakeFrontend(
            lambda r: Reply(rid=r.rid, status="error", error="missing-seq")
        ).start()
        client = make_client([server.addr])
        result = await client.get("k")
        await client.close()
        await server.close()
        return result, server.requests

    result, saw = asyncio.run(run())
    assert result == {"ok": False, "error": "missing-seq"}
    assert len(saw) == 1


def test_exhausted_attempts_raise_service_unavailable():
    async def run():
        server = await FakeFrontend(lambda r: None).start()
        client = make_client([server.addr], request_timeout=0.1,
                             max_attempts=2)
        with pytest.raises(ServiceUnavailable):
            await client.put("k", 1)
        await client.close()
        await server.close()
        return server.requests

    saw = asyncio.run(run())
    assert len(saw) == 2
    assert saw[0].seq == saw[1].seq


def test_client_needs_at_least_one_address():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        KVClient([], client_id="t")
