"""Fast in-process service tests: a real loopback rsm cluster with real
TCP frontends, exercising end-to-end ops, both dedup layers, and
redirects on the wire."""

import asyncio

import pytest

from repro.cluster import LocalCluster, verdicts_ok
from repro.errors import ConfigurationError
from repro.svc import KVClient, start_service
from repro.svc.protocol import Reply, Request, encode_frame, read_frame

PERIOD = 0.03


def service_test(body, n=3):
    """Boot an rsm LocalCluster with frontends, run *body*, tear down."""

    async def run():
        cluster = LocalCluster(n, transport="loopback")
        stacks = cluster.deploy_standard_stack(stack="rsm", period=PERIOD)
        await cluster.start()
        fronts = await start_service(cluster, stacks)
        try:
            return await body(cluster, stacks, fronts)
        finally:
            for front in fronts:
                await front.close()
            await cluster.stop()

    return asyncio.run(run())


async def wait_for_leader(cluster, stacks, timeout=5.0):
    """One stable leader every detector agrees on; returns its pid."""
    fds = stacks["fd"]

    def settled():
        views = {fd.trusted() for fd in fds}
        return len(views) == 1 and None not in views

    assert await cluster.run_until(settled, timeout=timeout)
    return fds[0].trusted()


# ------------------------------------------------------------------ end to end
def test_client_ops_end_to_end_and_replicas_converge():
    async def body(cluster, stacks, fronts):
        addrs = [front.local_address for front in fronts]
        async with KVClient(addrs, client_id="t", request_timeout=5.0) as c:
            assert (await c.put("k", 1)) == {"ok": True, "value": 1}
            assert (await c.get("k"))["value"] == 1
            assert (await c.cas("k", expect=1, value=2))["ok"]
            assert (await c.acquire("L"))["ok"]
            held = await c.request("acquire", key="L")  # same session: ok
            assert held["ok"]

        def converged():
            stores = [front.state.store for front in fronts]
            locks = [front.state.locks for front in fronts]
            return (
                all(s == {"k": 2} for s in stores)
                and all(l == {"L": "t"} for l in locks)
            )

        assert await cluster.run_until(converged, timeout=5.0)
        verdicts = cluster.verdicts()
        assert verdicts_ok(verdicts), verdicts

    service_test(body)


# ---------------------------------------------------------------- exactly-once
def test_same_command_through_two_replicas_applies_once():
    # A client retrying at a new leader resubmits the same (client, seq)
    # command under a fresh RSM cid: both copies reach the log, exactly
    # one executes.
    command = {"op": "put", "client": "retry", "seq": 0, "key": "k",
               "value": 1}

    async def body(cluster, stacks, fronts):
        stacks["rsm"][0].submit(dict(command))
        stacks["rsm"][1].submit(dict(command))

        def both_copies_applied():
            return all(len(rsm.log) >= 2 for rsm in stacks["rsm"])

        assert await cluster.run_until(both_copies_applied, timeout=5.0)
        for front in fronts:
            assert front.state.applied == 1
            assert front.state.store == {"k": 1}
        # Each replica saw the second copy as a duplicate apply.
        for pid in cluster.pids:
            metrics = cluster.host(pid).metrics
            assert metrics.value("svc_duplicates_total") == 1

    service_test(body)


def test_wire_level_retry_is_answered_from_the_session_cache():
    async def body(cluster, stacks, fronts):
        leader = await wait_for_leader(cluster, stacks)
        codec = fronts[leader].codec
        reader, writer = await asyncio.open_connection(
            *fronts[leader].local_address
        )

        async def roundtrip(rid):
            request = Request(rid=rid, client="w", op="put", seq=0,
                              key="k", value="v")
            writer.write(encode_frame(codec, request.to_payload()))
            await writer.drain()
            return Reply.from_payload(await read_frame(reader, codec))

        first = await roundtrip(rid=1)
        assert first.status == "ok" and first.result == {
            "ok": True, "value": "v"}
        # The retry (fresh rid, same client+seq) must not touch the log:
        # the leader answers from the replicated session table.
        slots_before = len(stacks["rsm"][leader].log)
        again = await roundtrip(rid=2)
        assert again.result == first.result
        assert len(stacks["rsm"][leader].log) == slots_before
        assert cluster.host(leader).metrics.value(
            "svc_duplicates_total") == 1
        writer.close()

    service_test(body)


# ------------------------------------------------------------------- redirects
def test_follower_redirects_to_the_leader_address():
    async def body(cluster, stacks, fronts):
        leader = await wait_for_leader(cluster, stacks)
        follower = next(pid for pid in cluster.pids if pid != leader)
        codec = fronts[follower].codec
        reader, writer = await asyncio.open_connection(
            *fronts[follower].local_address
        )
        request = Request(rid=1, client="r", op="put", seq=0, key="k",
                          value=1)
        writer.write(encode_frame(codec, request.to_payload()))
        await writer.drain()
        reply = Reply.from_payload(await read_frame(reader, codec))
        writer.close()
        assert reply.status == "redirect"
        assert reply.leader == leader
        assert tuple(reply.addr) == fronts[leader].local_address
        assert cluster.host(follower).metrics.value(
            "svc_redirects_total") == 1

    service_test(body)


# ----------------------------------------------------------------- guard rails
def test_start_service_requires_the_rsm_stack():
    async def run():
        cluster = LocalCluster(3, transport="loopback")
        stacks = cluster.deploy_standard_stack(stack="ring", period=PERIOD)
        await cluster.start()
        try:
            with pytest.raises(ConfigurationError):
                await start_service(cluster, stacks)
        finally:
            await cluster.stop()

    asyncio.run(run())
