"""The acceptance-criteria integration: kill -9 the leader while real
clients hammer the KV service over real sockets.

Asserts the whole contract at once:

* the load keeps completing (acked > 0 despite the crash window);
* **zero acknowledged-write loss** — every client's last acked put is
  at or below the surviving stores' value for its key (each client owns
  one key and writes an incrementing counter, so a lost ack would show
  as ``store[key] < acked value``);
* the surviving replicas converge to **identical stores**;
* the merged trace passes ``repro trace check`` and the QoS analyzer's
  ``2(n-1)`` transformation bound (``repro trace qos``).
"""

import asyncio

import pytest

from repro.cli import main as cli_main
from repro.cluster import ProcessCluster, verdicts_ok
from repro.load import LoadGenerator
from repro.svc import KVClient

pytestmark = pytest.mark.slow

PERIOD = 0.05
WARMUP = 1.5          # let the first leader settle before offering load
LOAD_DURATION = 3.0
CRASH_AT = WARMUP + 1.0   # SIGKILL mid-load
TIMEOUT = 8.0             # per-request budget: spans re-election


def test_kill_leader_under_load_loses_no_acked_write(tmp_path):
    async def drive():
        cluster = ProcessCluster(
            3, transport="udp", stack="rsm", period=PERIOD,
            duration=WARMUP + LOAD_DURATION + TIMEOUT + 4.0,
            serve=True, seed=7, workdir=tmp_path / "run",
        )
        cluster.crash(0, at=CRASH_AT)
        await cluster.start()
        serve = cluster.serve_addresses
        await asyncio.sleep(WARMUP)
        generator = LoadGenerator(
            list(serve.values()), clients=20, mode="closed",
            duration=LOAD_DURATION, request_timeout=TIMEOUT,
            max_attempts=10, seed=3,
        )
        report = await generator.run()

        # Survivors keep applying trailing duplicates for a moment; poll
        # their (non-replicated) dumps until the stores agree.
        checker = KVClient(
            [serve[1], serve[2]], client_id="checker", request_timeout=2.0,
        )
        dumps = None
        try:
            for _ in range(50):
                one = await checker.dump(addr=serve[1])
                two = await checker.dump(addr=serve[2])
                if one == two:
                    dumps = (one, two)
                    break
                await asyncio.sleep(0.1)
        finally:
            await checker.close()
        assert await cluster.wait_quiescent(timeout=30.0)
        await cluster.stop()
        return cluster, report, dumps

    cluster, report, dumps = asyncio.run(drive())

    # The crash model held: the leader died of SIGKILL, survivors exited
    # cleanly at the end of the scenario.
    assert cluster.exit_statuses[0] == -9
    assert cluster.exit_statuses[1] == 0
    assert cluster.exit_statuses[2] == 0

    # Load completed through the failover.
    assert report.acked > 0, report.render()
    assert report.last_acked_put, "no put was ever acknowledged"

    # Identical surviving stores (dump also covers locks + sessions).
    assert dumps is not None, "survivor stores never converged"
    assert dumps[0] == dumps[1]

    # Zero acked-write loss: each client owns its key and writes an
    # incrementing counter, so the store must be at or past every ack.
    store = dumps[0]["store"]
    for client_id, (key, _seq, value) in report.last_acked_put.items():
        assert key in store, f"{client_id}: acked key {key} missing"
        assert store[key] >= value, (
            f"{client_id}: acked {key}={value} but survivors hold "
            f"{store[key]} — an acknowledged write was lost"
        )

    # Log-level safety + the paper's QoS bound on the merged trace.
    assert verdicts_ok(cluster.verdicts()), cluster.verdicts()
    merged = cluster.save_merged(tmp_path / "merged.jsonl")
    assert cli_main(["trace", "check", str(merged)]) == 0
    assert cli_main(
        ["trace", "qos", str(merged), "--period", str(PERIOD)]
    ) == 0
