"""Tests for ◇C compositions (CombinedDetector, attach_ec_stack)."""

import pytest

from repro.analysis import check_fd_class_on_world
from repro.errors import ConfigurationError
from repro.fd import (
    CombinedDetector,
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_STRONG,
    OMEGA,
    OracleConfig,
    OracleFailureDetector,
    attach_ec_stack,
)
from repro.sim import World
from repro.workloads import partially_synchronous_link


def combined_world(n=5, seed=0, slander=frozenset()):
    """Oracle Ω + oracle ◇S feeding a CombinedDetector on every process."""
    world = World(n=n, seed=seed)
    combos = []
    for pid in world.pids:
        omega = world.attach(
            pid,
            OracleFailureDetector(
                OMEGA, OracleConfig(pre_behavior="ideal"), channel="fd.omega"
            ),
        )
        suspects = world.attach(
            pid,
            OracleFailureDetector(
                EVENTUALLY_STRONG,
                OracleConfig(pre_behavior="ideal", slander=slander),
                channel="fd.suspects",
            ),
        )
        combos.append(world.attach(pid, CombinedDetector(omega, suspects)))
    return world, combos


class TestCombinedDetector:
    def test_reexports_both_outputs(self):
        world, combos = combined_world()
        world.schedule_crash(3, 20.0)
        world.run(until=100.0)
        for det in combos:
            if det.pid != 3:
                assert det.trusted() == 0
                assert 3 in det.suspected()

    def test_trusted_removed_from_suspects(self):
        # Slander the would-be leader in the ◇S source: the combination must
        # keep Definition 1's third clause by excluding the trusted process.
        world, combos = combined_world(slander=frozenset({1}))
        world.schedule_crash(0, 20.0)
        world.run(until=200.0)
        for det in combos:
            if det.pid != 0:
                assert det.trusted() == 1
                assert 1 not in det.suspected()

    def test_sources_must_share_process(self):
        world = World(n=3, seed=0)
        omega = world.attach(
            0, OracleFailureDetector(OMEGA, channel="fd.omega")
        )
        suspects = world.attach(
            1, OracleFailureDetector(EVENTUALLY_STRONG, channel="fd.suspects")
        )
        world.attach(0, CombinedDetector(omega, suspects))
        with pytest.raises(ConfigurationError):
            world.start()

    def test_satisfies_ec_class(self):
        world, combos = combined_world(seed=2)
        world.schedule_crash(4, 30.0)
        world.run(until=400.0)
        results = check_fd_class_on_world(world, EVENTUALLY_CONSISTENT)
        assert all(results.values()), results


class TestECStack:
    @pytest.mark.parametrize("suspects", ["ring", "heartbeat", "complement"])
    def test_stack_satisfies_ec_under_partial_synchrony(self, suspects):
        world = World(
            n=5, seed=3, default_link=partially_synchronous_link(gst=60.0)
        )
        attach_ec_stack(world, suspects=suspects, initial_timeout=10.0)
        world.schedule_crash(0, 100.0)
        world.run(until=3000.0)
        results = check_fd_class_on_world(world, EVENTUALLY_CONSISTENT)
        assert all(results.values()), (suspects, results)

    def test_unknown_suspects_source_rejected(self):
        world = World(n=3, seed=0)
        with pytest.raises(ConfigurationError):
            attach_ec_stack(world, suspects="bogus")

    def test_complement_has_poor_accuracy(self):
        """The Ω→◇C route suspects all non-leaders — the paper's accuracy
        caveat, quantified in ablation A2."""
        world = World(n=5, seed=1)
        complement = attach_ec_stack(world, suspects="complement")
        world.run(until=200.0)
        det = complement[1]
        assert det.trusted() == 0
        assert det.suspected() == {2, 3, 4}  # everyone else but the leader
