"""Tests for the ring-based ◇S/◇P detector."""

import pytest

from repro.analysis import (
    check_fd_class_on_world,
    check_omega,
    build_histories,
    detection_latency,
)
from repro.errors import ConfigurationError
from repro.fd import EVENTUALLY_PERFECT, EVENTUALLY_CONSISTENT, RingDetector
from repro.sim import FixedDelay, ReliableLink, World
from repro.workloads import partially_synchronous_link


def lan_world(n=5, seed=0):
    return World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))


class TestRingBasics:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            RingDetector(period=0)

    def test_monitors_immediate_predecessor_initially(self):
        world = lan_world()
        dets = world.attach_all(lambda pid: RingDetector())
        world.start()
        assert [d.target for d in dets] == [4, 0, 1, 2, 3]

    def test_no_suspicion_on_stable_lan(self):
        world = lan_world(seed=1)
        dets = world.attach_all(lambda pid: RingDetector())
        world.run(until=400.0)
        assert all(det.suspected() == frozenset() for det in dets)
        # Ring leader rule: everyone trusts process 0.
        assert all(det.trusted() == 0 for det in dets)

    def test_crash_retargets_monitor(self):
        world = lan_world(seed=1)
        dets = world.attach_all(lambda pid: RingDetector())
        world.schedule_crash(4, 50.0)
        world.run(until=400.0)
        # Process 0 monitored 4; must now monitor 3.
        assert dets[0].target == 3
        assert 4 in dets[0].suspected()

    def test_suspicion_propagates_to_everyone(self):
        world = lan_world(n=6, seed=2)
        dets = world.attach_all(lambda pid: RingDetector())
        world.schedule_crash(2, 50.0)
        world.run(until=800.0)
        for det in dets:
            if det.pid != 2:
                assert 2 in det.suspected(), f"pid {det.pid} missed the crash"

    def test_leader_is_first_non_suspected_in_ring_order(self):
        world = lan_world(seed=3)
        dets = world.attach_all(lambda pid: RingDetector())
        world.schedule_crash(0, 50.0)
        world.schedule_crash(1, 60.0)
        world.run(until=900.0)
        for det in dets:
            if det.pid not in (0, 1):
                assert det.trusted() == 2

    def test_message_cost_is_2n_per_period(self):
        n = 6
        world = lan_world(n=n, seed=0)
        world.attach_all(lambda pid: RingDetector(period=5.0))
        world.run(until=300.0)
        sends = world.trace.select(
            kind="send", after=150.0, before=300.0,
            where=lambda e: e.get("channel") == "fd",
        )
        periods = 150.0 / 5.0
        per_period = len(sends) / periods
        assert per_period == pytest.approx(2 * n, rel=0.15)

    def test_detection_latency_grows_with_distance(self):
        """The DISC'99 drawback: the suspect list travels hop by hop."""
        n = 8
        world = lan_world(n=n, seed=1)
        world.attach_all(lambda pid: RingDetector(period=5.0))
        world.schedule_crash(2, 60.0)
        world.run(until=1500.0)
        latency = detection_latency(
            world.trace, 2, 60.0, world.correct_pids, channel="fd"
        )
        assert latency is not None
        # Must exceed several periods: information crosses ~n-1 hops.
        assert latency > 3 * 5.0


class TestRingClassProperties:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_satisfies_dp_under_partial_synchrony(self, seed):
        world = World(
            n=5, seed=seed,
            default_link=partially_synchronous_link(gst=60.0),
        )
        world.attach_all(lambda pid: RingDetector(initial_timeout=10.0))
        world.schedule_crash(3, 100.0)
        world.run(until=2500.0)
        results = check_fd_class_on_world(world, EVENTUALLY_PERFECT)
        assert all(results.values()), results

    def test_ring_leader_satisfies_omega(self):
        world = World(
            n=5, seed=4, default_link=partially_synchronous_link(gst=60.0)
        )
        world.attach_all(lambda pid: RingDetector(initial_timeout=10.0))
        world.schedule_crash(0, 100.0)
        world.run(until=2500.0)
        histories = build_histories(world.trace, channel="fd")
        result = check_omega(histories, world.correct_pids, world.trace.end_time)
        assert result.ok
        assert result.witness == 1
