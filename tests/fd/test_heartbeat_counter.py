"""Tests for the timeout-free heartbeat-counter detector."""

import pytest

from repro.errors import ConfigurationError
from repro.fd.heartbeat_counter import HeartbeatCounterDetector
from repro.sim import FixedDelay, ReliableLink, World
from repro.workloads import asynchronous_link


def build(n=4, seed=0, link=None):
    world = World(
        n=n, seed=seed,
        default_link=link if link is not None else ReliableLink(FixedDelay(1.0)),
    )
    dets = world.attach_all(lambda pid: HeartbeatCounterDetector(period=5.0))
    return world, dets


class TestHeartbeatCounter:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HeartbeatCounterDetector(period=0)

    def test_counters_of_correct_processes_grow(self):
        world, dets = build()
        world.run(until=100.0)
        first = dets[0].snapshot()
        world.run(until=200.0)
        second = dets[0].snapshot()
        assert all(b > a for a, b in zip(first, second))

    def test_counter_of_crashed_process_freezes(self):
        world, dets = build()
        world.schedule_crash(2, 50.0)
        world.run(until=100.0)
        frozen = dets[0].heartbeat_of(2)
        world.run(until=400.0)
        assert dets[0].heartbeat_of(2) == frozen
        # Correct processes kept beating meanwhile.
        assert dets[0].heartbeat_of(1) > dets[0].heartbeat_of(2)

    def test_never_suspects_never_trusts(self):
        world, dets = build()
        world.schedule_crash(2, 50.0)
        world.run(until=300.0)
        assert dets[0].suspected() == frozenset()
        assert dets[0].trusted() is None

    def test_progressed_since(self):
        world, dets = build()
        world.run(until=50.0)
        mark = dets[0].heartbeat_of(1)
        assert not dets[0].progressed_since(1, mark)
        world.run(until=80.0)
        assert dets[0].progressed_since(1, mark)

    def test_own_counter_advances(self):
        world, dets = build()
        world.run(until=50.0)
        assert dets[3].heartbeat_of(3) >= 10

    def test_no_timing_assumptions_needed(self):
        """Unlike the timeout detectors, wild delay spikes cause no
        misbehaviour at all — counters just arrive late."""
        world, dets = build(seed=2, link=asynchronous_link(spike_prob=0.3))
        world.schedule_crash(1, 100.0)
        world.run(until=1000.0)
        # Crashed counter below every correct counter; nothing "suspected".
        for det in dets:
            if det.pid != 1:
                assert det.heartbeat_of(1) < det.heartbeat_of(det.pid)
                assert det.suspected() == frozenset()

    def test_monotonicity(self):
        world, dets = build(seed=3)
        previous = dets[0].snapshot()
        for t in range(50, 400, 50):
            world.run(until=float(t))
            current = dets[0].snapshot()
            assert all(c >= p for p, c in zip(previous, current))
            previous = current
