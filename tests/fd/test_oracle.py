"""Tests for the scriptable oracle failure detectors."""

import pytest

from repro.errors import ConfigurationError
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_QUASI_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    OMEGA,
    OracleConfig,
    OracleFailureDetector,
    oracle_factory,
)
from repro.sim import World


def make_world(fd_class, config=None, n=5, seed=0):
    world = World(n=n, seed=seed)
    detectors = world.attach_all(oracle_factory(fd_class, config))
    world.start()
    return world, detectors


class TestOracleConfig:
    def test_rejects_unknown_behavior(self):
        with pytest.raises(ConfigurationError):
            OracleConfig(pre_behavior="chaotic")

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            OracleConfig(poll_period=0.0)


class TestIdealOutputs:
    def test_dp_suspects_exactly_crashed(self):
        world, dets = make_world(
            EVENTUALLY_PERFECT, OracleConfig(pre_behavior="ideal")
        )
        world.schedule_crash(3, 10.0)
        world.run(until=50.0)
        for det in dets:
            if det.pid != 3:
                assert det.suspected() == {3}
                assert det.trusted() is None

    def test_detection_lag_delays_suspicion(self):
        config = OracleConfig(pre_behavior="ideal", detection_lag=20.0)
        world, dets = make_world(EVENTUALLY_PERFECT, config)
        world.schedule_crash(3, 10.0)
        world.run(until=25.0)
        assert dets[0].suspected() == frozenset()
        world.run(until=60.0)
        assert dets[0].suspected() == {3}

    def test_omega_trusts_min_correct(self):
        world, dets = make_world(OMEGA, OracleConfig(pre_behavior="ideal"))
        world.schedule_crash(0, 10.0)
        world.run(until=50.0)
        for det in dets:
            if det.pid != 0:
                assert det.trusted() == 1
                # Omega implicitly suspects everyone but the leader.
                assert det.suspected() == frozenset({0, 2, 3, 4}) - {det.pid}

    def test_designated_leader(self):
        config = OracleConfig(pre_behavior="ideal", leader=2)
        world, dets = make_world(OMEGA, config)
        world.run(until=20.0)
        assert all(det.trusted() == 2 for det in dets)

    def test_ds_slander_persists(self):
        config = OracleConfig(pre_behavior="ideal", slander=frozenset({1, 2}))
        world, dets = make_world(EVENTUALLY_STRONG, config)
        world.run(until=30.0)
        assert dets[0].suspected() == {1, 2}
        # Never suspects itself even if slandered.
        assert 1 not in dets[1].suspected()

    def test_slander_never_includes_leader(self):
        config = OracleConfig(
            pre_behavior="ideal", leader=1, slander=frozenset({1, 2})
        )
        world, dets = make_world(EVENTUALLY_CONSISTENT, config)
        world.run(until=30.0)
        assert 1 not in dets[0].suspected()
        assert dets[0].trusted() == 1

    def test_dq_weak_completeness_single_witness(self):
        world, dets = make_world(
            EVENTUALLY_QUASI_PERFECT, OracleConfig(pre_behavior="ideal")
        )
        world.schedule_crash(4, 10.0)
        world.run(until=50.0)
        assert dets[0].suspected() == {4}          # witness = min correct
        assert dets[1].suspected() == frozenset()  # others: nothing

    def test_dw_witness_and_slander(self):
        config = OracleConfig(pre_behavior="ideal", slander=frozenset({3}))
        world, dets = make_world(EVENTUALLY_WEAK, config)
        world.schedule_crash(4, 10.0)
        world.run(until=50.0)
        assert dets[0].suspected() == {3, 4}
        assert dets[1].suspected() == {3}

    def test_ec_trusted_not_suspected(self):
        world, dets = make_world(
            EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal")
        )
        world.schedule_crash(2, 5.0)
        world.run(until=40.0)
        for det in dets:
            if det.pid != 2:
                assert det.trusted() == 0
                assert det.trusted() not in det.suspected()
                assert 2 in det.suspected() or det.pid == 2


class TestPreStabilization:
    def test_suspect_all(self):
        config = OracleConfig(stabilize_time=100.0, pre_behavior="suspect-all")
        world, dets = make_world(EVENTUALLY_CONSISTENT, config)
        world.run(until=50.0)
        for det in dets:
            assert det.suspected() == frozenset(range(5)) - {det.pid}
            assert det.trusted() == det.pid

    def test_erratic_changes_then_stabilizes(self):
        config = OracleConfig(stabilize_time=100.0, pre_behavior="erratic")
        world, dets = make_world(EVENTUALLY_CONSISTENT, config)
        world.run(until=90.0)
        outputs_before = [det.suspected() for det in dets]
        world.run(until=300.0)
        # After stabilization with no crashes: nobody suspected, all trust 0.
        for det in dets:
            assert det.suspected() == frozenset()
            assert det.trusted() == 0
        # Erratic phase produced at least one nonempty suspicion somewhere.
        fd_events = world.trace.select(kind="fd", before=100.0)
        assert any(ev.get("suspected") for ev in fd_events)

    def test_erratic_is_deterministic_per_seed(self):
        config = OracleConfig(stabilize_time=50.0, pre_behavior="erratic")
        runs = []
        for _ in range(2):
            world, dets = make_world(EVENTUALLY_STRONG, config, seed=7)
            world.run(until=40.0)
            runs.append([det.suspected() for det in dets])
        assert runs[0] == runs[1]
