"""Tests for the FailureDetector base class and the class taxonomy."""

import pytest

from repro.fd import (
    ALL_CLASSES,
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    FailureDetector,
    OMEGA,
    PERFECT,
    first_non_suspected,
)
from repro.sim import World


class Scripted(FailureDetector):
    """Detector whose output is set manually by the test."""

    def set(self, suspected=None, trusted="__keep__"):
        self._set_output(suspected=suspected, trusted=trusted)


@pytest.fixture
def fd():
    world = World(n=4, seed=0)
    det = world.attach(0, Scripted())
    world.start()
    return world, det


class TestFailureDetectorBase:
    def test_initial_output(self, fd):
        _, det = fd
        assert det.suspected() == frozenset()
        assert det.trusted() is None

    def test_set_and_query(self, fd):
        _, det = fd
        det.set(suspected=frozenset({1, 2}), trusted=3)
        assert det.suspected() == {1, 2}
        assert det.trusted() == 3
        assert det.suspects(1)
        assert not det.suspects(3)

    def test_trusted_can_be_cleared_to_none(self, fd):
        _, det = fd
        det.set(trusted=2)
        det.set(trusted=None)
        assert det.trusted() is None

    def test_listeners_fire_on_change_only(self, fd):
        _, det = fd
        calls = []
        det.subscribe(calls.append)
        det.set(suspected=frozenset({1}))
        det.set(suspected=frozenset({1}))  # no change
        assert len(calls) == 1
        det.set(trusted=2)
        assert len(calls) == 2

    def test_changes_recorded_in_trace_with_channel(self, fd):
        world, det = fd
        det.set(suspected=frozenset({2}), trusted=1)
        events = world.trace.select(kind="fd")
        assert events  # initial + change
        last = events[-1]
        assert last.get("channel") == "fd"
        assert last.get("suspected") == {2}
        assert last.get("trusted") == 1

    def test_other_components_poked_on_change(self, fd):
        world, det = fd
        pokes = []

        class Waiter(FailureDetector):
            channel = "other"

            def on_fd_change(self):
                pokes.append(1)

        world.attach(0, Waiter())
        det.set(suspected=frozenset({1}))
        assert pokes == [1]


class TestFirstNonSuspected:
    def test_default_order(self):
        assert first_non_suspected(frozenset({0, 1}), 4) == 2

    def test_empty_suspicions(self):
        assert first_non_suspected(frozenset(), 4) == 0

    def test_all_suspected(self):
        assert first_non_suspected(frozenset({0, 1, 2, 3}), 4) is None

    def test_custom_order(self):
        assert first_non_suspected(frozenset({3}), 4, order=[3, 2, 1, 0]) == 2


class TestClassTaxonomy:
    def test_fig1_grid(self):
        # Fig. 1 of the paper: completeness x accuracy.
        assert EVENTUALLY_PERFECT.completeness == "strong"
        assert EVENTUALLY_PERFECT.accuracy == "eventual-strong"
        assert EVENTUALLY_STRONG.completeness == "strong"
        assert EVENTUALLY_STRONG.accuracy == "eventual-weak"
        assert EVENTUALLY_WEAK.completeness == "weak"
        assert EVENTUALLY_WEAK.accuracy == "eventual-weak"

    def test_omega_has_leader_only(self):
        assert OMEGA.leader
        assert OMEGA.completeness is None
        assert OMEGA.accuracy is None

    def test_ec_is_s_plus_omega_plus_consistency(self):
        # Definition 1.
        assert EVENTUALLY_CONSISTENT.completeness == EVENTUALLY_STRONG.completeness
        assert EVENTUALLY_CONSISTENT.accuracy == EVENTUALLY_STRONG.accuracy
        assert EVENTUALLY_CONSISTENT.leader
        assert EVENTUALLY_CONSISTENT.trusted_not_suspected

    def test_perfect_is_perpetual(self):
        assert PERFECT.accuracy == "strong"

    def test_all_classes_unique_symbols(self):
        symbols = [c.symbol for c in ALL_CLASSES]
        assert len(symbols) == len(set(symbols))
