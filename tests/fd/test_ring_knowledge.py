"""Property-based tests of the ring detector's knowledge-merge rules.

The ring detector's correctness hinges on its per-process
``(epoch, suspected)`` entries converging under arbitrary message
interleavings.  These tests drive `_merge` / `_bump` directly with
hypothesis-generated update sequences and check the CRDT-ish invariants the
DISC'99-style algorithm needs.
"""

from hypothesis import given, strategies as st

from repro.fd import RingDetector
from repro.sim import World


def fresh_detector():
    world = World(n=4, seed=0)
    det = world.attach(1, RingDetector())
    world.start()
    return world, det


entry = st.tuples(st.integers(min_value=0, max_value=20), st.booleans())
remote_knowledge = st.dictionaries(
    st.integers(min_value=0, max_value=3), entry, max_size=4
)


class TestKnowledgeMerge:
    @given(remote=remote_knowledge)
    def test_merge_never_decreases_epochs(self, remote):
        _, det = fresh_detector()
        before = dict(det._knowledge)
        det._merge(remote)
        for q, (epoch, _) in det._knowledge.items():
            assert epoch >= before[q][0]

    @given(remote=remote_knowledge)
    def test_never_adopts_suspicion_of_self(self, remote):
        _, det = fresh_detector()
        det._merge(remote)
        assert not det._knowledge[det.pid][1]
        assert det.pid not in det.suspected()

    @given(remotes=st.lists(remote_knowledge, max_size=6))
    def test_merge_order_independent_outcome_dominates(self, remotes):
        """Merging the same set of remote views in any order yields entries
        dominated by the pointwise maximum epoch."""
        _, det_a = fresh_detector()
        _, det_b = fresh_detector()
        for r in remotes:
            det_a._merge(r)
        for r in reversed(remotes):
            det_b._merge(r)
        for q in range(4):
            # Epochs agree (max of the same inputs)...
            assert det_a._knowledge[q][0] == det_b._knowledge[q][0]

    @given(remote=remote_knowledge)
    def test_higher_epoch_always_wins(self, remote):
        _, det = fresh_detector()
        det._merge(remote)
        for q, (epoch, suspected) in remote.items():
            if q == det.pid:
                continue
            local_epoch, local_susp = det._knowledge[q]
            if epoch > 0:  # strictly above the initial (0, False)
                assert local_epoch >= epoch
                if local_epoch == epoch:
                    # ties keep suspicion if either side suspected
                    assert local_susp or not suspected

    def test_bump_increments_epoch(self):
        _, det = fresh_detector()
        det._bump(2, True)
        assert det._knowledge[2] == (1, True)
        det._bump(2, False)
        assert det._knowledge[2] == (2, False)

    def test_refute_requires_current_suspicion(self):
        _, det = fresh_detector()
        before = dict(det._knowledge)
        det._refute(2)  # not suspected: no-op
        assert det._knowledge == before
        det._bump(2, True)
        det._refute(2)
        assert det._knowledge[2] == (2, False)
