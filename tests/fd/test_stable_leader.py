"""Tests for the stable Ω implementation (accusation counters)."""

import pytest

from repro.analysis import check_fd_class_on_world
from repro.errors import ConfigurationError
from repro.fd import LeaderBasedOmega, OMEGA, StableLeaderOmega
from repro.sim import (
    FixedDelay,
    NetworkController,
    ReliableLink,
    UniformDelay,
    World,
)
from repro.workloads import partially_synchronous_link


def lan_world(n=5, seed=0):
    return World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))


class TestStableLeaderBasics:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            StableLeaderOmega(period=0)

    def test_everyone_trusts_p0_when_stable(self):
        world = lan_world(seed=1)
        dets = world.attach_all(lambda pid: StableLeaderOmega())
        world.run(until=400.0)
        assert all(det.trusted() == 0 for det in dets)
        # And nobody churned.
        assert all(det.leader_changes == 0 for det in dets)

    def test_leader_crash_elects_successor(self):
        world = lan_world(seed=2)
        dets = world.attach_all(lambda pid: StableLeaderOmega())
        world.schedule_crash(0, 60.0)
        world.run(until=600.0)
        leaders = {det.trusted() for det in dets if det.pid != 0}
        assert len(leaders) == 1
        assert leaders.pop() in world.correct_pids

    def test_counters_converge_across_processes(self):
        world = lan_world(seed=3)
        dets = world.attach_all(lambda pid: StableLeaderOmega())
        world.schedule_crash(0, 60.0)
        world.run(until=800.0)
        live = [d for d in dets if not d.crashed]
        for q in range(world.n):
            values = {d.counter_of(q) for d in live}
            assert len(values) == 1, (q, values)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_satisfies_omega_under_partial_synchrony(self, seed):
        world = World(
            n=5, seed=seed, default_link=partially_synchronous_link(gst=80.0)
        )
        world.attach_all(lambda pid: StableLeaderOmega(initial_timeout=8.0))
        world.schedule_crash(0, 120.0)
        world.run(until=2000.0)
        results = check_fd_class_on_world(world, OMEGA)
        assert all(results.values()), results


class TestStability:
    def flaky_world(self, detector_factory, seed=4, n=4):
        """p0 has intermittently terrible output links after an initial
        good period: the classic stability stressor."""
        world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
        dets = world.attach_all(detector_factory)
        ctl = NetworkController(world)
        # Recurring degradation windows for p0's output links.
        for start in range(100, 2000, 200):
            for dst in range(1, n):
                ctl.degrade_between(
                    float(start), float(start + 100), 0, dst,
                    ReliableLink(UniformDelay(30.0, 60.0)),
                )
        world.run(until=2500.0)
        return dets

    def test_stable_omega_settles_despite_flaky_low_id(self):
        dets = self.flaky_world(
            lambda pid: StableLeaderOmega(initial_timeout=8.0,
                                          timeout_increment=0.0)
        )
        # Non-flaky processes end up agreeing on a leader...
        leaders = {d.trusted() for d in dets[1:]}
        assert len(leaders) == 1
        # ...and churn stopped: no leader changes in the last windows.
        # (Counters only grow, so once the flaky p0 is demoted it stays out.)
        changes_late = [d.leader_changes for d in dets[1:]]
        dets2 = self.flaky_world(
            lambda pid: StableLeaderOmega(initial_timeout=8.0,
                                          timeout_increment=0.0)
        )
        assert [d.leader_changes for d in dets2[1:]] == changes_late  # deterministic

    def test_plain_leader_based_churns_more(self):
        """The ablation's core claim: with reinstatement-on-heartbeat, the
        flaky process keeps displacing the working leader."""
        stable = self.flaky_world(
            lambda pid: StableLeaderOmega(initial_timeout=8.0,
                                          timeout_increment=0.0)
        )
        plain = self.flaky_world(
            lambda pid: LeaderBasedOmega(initial_timeout=8.0,
                                         timeout_increment=0.0)
        )
        # Count leadership changes from the trace for the plain detector.
        def churn(dets):
            total = 0
            for det in dets[1:]:
                history = [
                    ev.get("trusted")
                    for ev in det.world.trace.select(
                        kind="fd", pid=det.pid,
                        where=lambda e: e.get("channel") == "fd")
                ]
                total += sum(
                    1 for a, b in zip(history, history[1:]) if a != b
                )
            return total

        assert churn(plain) > 3 * max(1, churn(stable))
