"""Tests for the oracle's crash-epoch recomputation cache.

The optimization (skip recomputing the class-ideal output while no crash
has occurred) must be invisible: outputs react to every crash, and the
cache is bypassed whenever a detection lag makes outputs time-dependent.
"""

from repro.fd import (
    EVENTUALLY_PERFECT,
    OMEGA,
    OracleConfig,
    OracleFailureDetector,
    oracle_factory,
)
from repro.sim import World


class TestOracleEpochCache:
    def test_output_reacts_to_every_crash(self):
        world = World(n=5, seed=0)
        dets = world.attach_all(oracle_factory(
            EVENTUALLY_PERFECT, OracleConfig(pre_behavior="ideal")))
        world.schedule_crash(3, 20.0)
        world.schedule_crash(4, 40.0)
        world.run(until=30.0)
        assert dets[0].suspected() == {3}
        world.run(until=60.0)
        assert dets[0].suspected() == {3, 4}

    def test_crash_epoch_counter(self):
        world = World(n=4, seed=0)
        assert world.crash_epoch == 0
        world.crash(1)
        assert world.crash_epoch == 1
        world.crash(1)  # idempotent crash: no second bump
        assert world.crash_epoch == 1
        world.crash(2)
        assert world.crash_epoch == 2

    def test_leader_tracks_crashes_through_cache(self):
        world = World(n=4, seed=0)
        dets = world.attach_all(oracle_factory(
            OMEGA, OracleConfig(pre_behavior="ideal")))
        world.run(until=10.0)
        assert dets[1].trusted() == 0
        world.crash(0)
        world.run(until=30.0)
        assert dets[1].trusted() == 1

    def test_detection_lag_bypasses_cache(self):
        """With a lag the output changes *without* a new crash; the cache
        must not freeze the pre-detection view."""
        world = World(n=4, seed=0)
        dets = world.attach_all(oracle_factory(
            EVENTUALLY_PERFECT,
            OracleConfig(pre_behavior="ideal", detection_lag=30.0)))
        world.schedule_crash(2, 10.0)
        world.run(until=25.0)
        assert dets[0].suspected() == frozenset()  # lag not yet elapsed
        world.run(until=60.0)
        assert dets[0].suspected() == {2}  # appeared with no further crash

    def test_erratic_phase_never_cached(self):
        config = OracleConfig(stabilize_time=100.0, pre_behavior="erratic",
                              erratic_suspect_prob=0.5)
        world = World(n=4, seed=1)
        dets = world.attach_all(oracle_factory(EVENTUALLY_PERFECT, config))
        world.run(until=90.0)
        # Erratic outputs changed repeatedly despite zero crashes.
        changes = world.trace.select(kind="fd", pid=0)
        assert len(changes) > 5
