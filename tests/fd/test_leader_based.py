"""Tests for the leader-based Ω implementation."""

import pytest

from repro.analysis import build_histories, check_omega
from repro.errors import ConfigurationError
from repro.fd import LeaderBasedOmega, OMEGA
from repro.analysis import check_fd_class_on_world
from repro.sim import FixedDelay, ReliableLink, World
from repro.workloads import partially_synchronous_link


def lan_world(n=5, seed=0):
    return World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))


class TestLeaderBasedBasics:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LeaderBasedOmega(period=-1)

    def test_everyone_trusts_p0_when_stable(self):
        world = lan_world(seed=1)
        dets = world.attach_all(lambda pid: LeaderBasedOmega())
        world.run(until=300.0)
        assert all(det.trusted() == 0 for det in dets)

    def test_leader_crash_moves_to_next(self):
        world = lan_world(seed=1)
        dets = world.attach_all(lambda pid: LeaderBasedOmega())
        world.schedule_crash(0, 50.0)
        world.run(until=400.0)
        for det in dets:
            if det.pid != 0:
                assert det.trusted() == 1

    def test_cascade_of_leader_crashes(self):
        world = lan_world(seed=2)
        dets = world.attach_all(lambda pid: LeaderBasedOmega())
        world.schedule_crash(0, 50.0)
        world.schedule_crash(1, 120.0)
        world.schedule_crash(2, 190.0)
        world.run(until=600.0)
        for det in dets:
            if det.pid > 2:
                assert det.trusted() == 3

    def test_non_leader_crash_is_invisible(self):
        # The detector only monitors candidates; crashing a high pid must not
        # disturb the elected leader.
        world = lan_world(seed=3)
        dets = world.attach_all(lambda pid: LeaderBasedOmega())
        world.schedule_crash(4, 50.0)
        world.run(until=300.0)
        for det in dets:
            if det.pid != 4:
                assert det.trusted() == 0

    def test_steady_state_cost_is_n_minus_1(self):
        n = 7
        world = lan_world(n=n, seed=0)
        world.attach_all(lambda pid: LeaderBasedOmega(period=5.0))
        world.run(until=400.0)
        sends = world.trace.select(
            kind="send", after=200.0, before=400.0,
            where=lambda e: e.get("channel") == "fd",
        )
        per_period = len(sends) / (200.0 / 5.0)
        assert per_period == pytest.approx(n - 1, rel=0.1)

    def test_reinstates_falsely_ruled_out_leader(self):
        # Chaotic pre-GST phase: p0 will be ruled out and must come back.
        world = World(
            n=4, seed=5,
            default_link=partially_synchronous_link(gst=100.0, pre_max=50.0),
        )
        dets = world.attach_all(
            lambda pid: LeaderBasedOmega(initial_timeout=6.0)
        )
        world.run(until=800.0)
        assert all(det.trusted() == 0 for det in dets)
        # At least one process widened p0's timeout along the way.
        assert any(det.timeout_of(0) > 6.0 for det in dets if det.pid != 0)


class TestLeaderBasedOmegaProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_satisfies_omega_under_partial_synchrony(self, seed):
        world = World(
            n=5, seed=seed, default_link=partially_synchronous_link(gst=80.0)
        )
        world.attach_all(lambda pid: LeaderBasedOmega(initial_timeout=8.0))
        world.schedule_crash(0, 120.0)
        world.run(until=1500.0)
        results = check_fd_class_on_world(world, OMEGA)
        assert all(results.values()), results
        histories = build_histories(world.trace)
        omega = check_omega(histories, world.correct_pids, world.trace.end_time)
        assert omega.witness == 1
