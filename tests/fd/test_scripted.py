"""Tests for ScriptedFailureDetector (the heterogeneous-view instrument)."""

import pytest

from repro.errors import ConfigurationError
from repro.fd import ScriptedFailureDetector
from repro.sim import World


class TestScriptedDetector:
    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            ScriptedFailureDetector(lambda p, t: (frozenset(), 0),
                                    poll_period=0)

    def test_per_pid_heterogeneous_views(self):
        def script(pid, now):
            if pid == 1:
                return frozenset({0}), 1
            return frozenset(), 0

        world = World(n=3, seed=0)
        dets = world.attach_all(
            lambda pid: ScriptedFailureDetector(script)
        )
        world.run(until=10.0)
        assert dets[0].trusted() == 0 and dets[0].suspected() == frozenset()
        assert dets[1].trusted() == 1 and dets[1].suspected() == {0}

    def test_time_dependent_script(self):
        def script(pid, now):
            return (frozenset(), 0) if now < 20.0 else (frozenset({0}), 1)

        world = World(n=3, seed=0)
        dets = world.attach_all(
            lambda pid: ScriptedFailureDetector(script, poll_period=1.0)
        )
        world.run(until=10.0)
        assert dets[2].trusted() == 0
        world.run(until=30.0)
        assert dets[2].trusted() == 1
        assert dets[2].suspected() == {0}

    def test_never_suspects_self(self):
        world = World(n=3, seed=0)
        dets = world.attach_all(
            lambda pid: ScriptedFailureDetector(
                lambda p, t: (frozenset({0, 1, 2}), 0)
            )
        )
        world.run(until=5.0)
        for det in dets:
            assert det.pid not in det.suspected()

    def test_changes_poke_other_components(self):
        from repro.sim import Component

        pokes = []

        class Listener(Component):
            channel = "listen"

            def on_fd_change(self):
                pokes.append(self.now)

        def script(pid, now):
            return (frozenset(), int(now // 10) % 3)  # leader cycles

        world = World(n=3, seed=0)
        world.attach(0, ScriptedFailureDetector(script, poll_period=1.0))
        world.attach(0, Listener())
        world.run(until=25.0)
        assert len(pokes) >= 2  # leader changed at t=10 and t=20
