"""Tests for the all-to-all heartbeat ◇P implementation."""

import pytest

from repro.analysis import (
    build_histories,
    check_fd_class_on_world,
    detection_latency,
)
from repro.errors import ConfigurationError
from repro.fd import EVENTUALLY_PERFECT, HeartbeatEventuallyPerfect
from repro.sim import FixedDelay, ReliableLink, World
from repro.workloads import partially_synchronous_link


def psync_world(n=5, seed=0, gst=40.0):
    return World(
        n=n, seed=seed, default_link=partially_synchronous_link(gst=gst)
    )


class TestHeartbeatBasics:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HeartbeatEventuallyPerfect(period=0)
        with pytest.raises(ConfigurationError):
            HeartbeatEventuallyPerfect(initial_timeout=-1)

    def test_no_suspicion_on_stable_lan(self):
        world = World(n=4, seed=1, default_link=ReliableLink(FixedDelay(1.0)))
        dets = world.attach_all(lambda pid: HeartbeatEventuallyPerfect())
        world.run(until=300.0)
        assert all(det.suspected() == frozenset() for det in dets)

    def test_crashed_process_suspected_by_all(self):
        world = World(n=4, seed=1, default_link=ReliableLink(FixedDelay(1.0)))
        dets = world.attach_all(lambda pid: HeartbeatEventuallyPerfect())
        world.schedule_crash(2, 50.0)
        world.run(until=300.0)
        for det in dets:
            if det.pid != 2:
                assert det.suspected() == {2}

    def test_detection_latency_close_to_timeout(self):
        world = World(n=4, seed=1, default_link=ReliableLink(FixedDelay(1.0)))
        world.attach_all(
            lambda pid: HeartbeatEventuallyPerfect(period=5.0, initial_timeout=12.0)
        )
        world.schedule_crash(2, 50.0)
        world.run(until=300.0)
        latency = detection_latency(
            world.trace, 2, 50.0, world.correct_pids, channel="fd"
        )
        # Should be around timeout + delivery, far below the ring's O(n).
        assert latency is not None
        assert latency < 25.0

    def test_false_suspicion_widens_timeout(self):
        # Chaotic pre-GST delays cause false suspicions; each one must bump
        # the timeout (Task-4 analogue).
        world = psync_world(seed=3, gst=120.0)
        dets = world.attach_all(
            lambda pid: HeartbeatEventuallyPerfect(initial_timeout=6.0,
                                                   timeout_increment=4.0)
        )
        world.run(until=400.0)
        bumped = any(
            det.timeout_of(q) > 6.0
            for det in dets
            for q in range(5)
            if q != det.pid
        )
        assert bumped

    def test_message_cost_is_n_squared_per_period(self):
        n = 6
        world = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
        world.attach_all(lambda pid: HeartbeatEventuallyPerfect(period=5.0))
        world.run(until=200.0)
        sends = world.trace.select(
            kind="send", after=100.0, before=200.0,
            where=lambda e: e.get("channel") == "fd",
        )
        periods = (200.0 - 100.0) / 5.0
        per_period = len(sends) / periods
        assert per_period == pytest.approx(n * (n - 1), rel=0.1)


class TestHeartbeatClassProperties:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_satisfies_dp_under_partial_synchrony(self, seed):
        world = psync_world(seed=seed, gst=60.0)
        world.attach_all(
            lambda pid: HeartbeatEventuallyPerfect(initial_timeout=8.0)
        )
        world.schedule_crash(1, 100.0)
        world.run(until=1000.0)
        results = check_fd_class_on_world(world, EVENTUALLY_PERFECT)
        assert all(results.values()), results

    def test_histories_are_recorded(self):
        world = psync_world(seed=0)
        world.attach_all(lambda pid: HeartbeatEventuallyPerfect())
        world.schedule_crash(0, 60.0)
        world.run(until=300.0)
        histories = build_histories(world.trace, channel="fd")
        assert set(histories) == set(range(5))
