"""Tests for the Reliable Broadcast primitive."""

import pytest

from repro.broadcast import ReliableBroadcast
from repro.sim import Component, DeadLink, FixedDelay, ReliableLink, World


@pytest.fixture
def world():
    return World(n=4, seed=0, default_link=ReliableLink(FixedDelay(1.0)))


def attach_rbs(world):
    rbs = world.attach_all(lambda pid: ReliableBroadcast())
    delivered = {pid: [] for pid in world.pids}
    for pid, rb in enumerate(rbs):
        rb.on_deliver(lambda origin, payload, pid=pid: delivered[pid].append(
            (origin, payload)))
    world.start()
    return rbs, delivered


class TestValidityAndAgreement:
    def test_broadcaster_delivers_immediately(self, world):
        rbs, delivered = attach_rbs(world)
        rbs[0].rbroadcast("m")
        assert delivered[0] == [(0, "m")]

    def test_everyone_delivers(self, world):
        rbs, delivered = attach_rbs(world)
        rbs[1].rbroadcast("hello")
        world.run()
        for pid in world.pids:
            assert delivered[pid] == [(1, "hello")]

    def test_agreement_when_origin_crashes_mid_broadcast(self, world):
        """Origin's message reaches one process which must relay to all."""
        # Kill the direct links 0->2 and 0->3: only process 1 hears from 0.
        world.network.set_link(0, 2, DeadLink())
        world.network.set_link(0, 3, DeadLink())
        rbs, delivered = attach_rbs(world)
        rbs[0].rbroadcast("survivor")
        world.crash(0)
        world.run()
        for pid in (1, 2, 3):
            assert delivered[pid] == [(0, "survivor")], pid

    def test_uniform_integrity_no_duplicates(self, world):
        rbs, delivered = attach_rbs(world)
        rbs[0].rbroadcast("a")
        rbs[0].rbroadcast("a")  # same payload, different message id: 2 deliveries
        world.run()
        assert delivered[2] == [(0, "a"), (0, "a")]
        # but each broadcast delivered exactly once despite n-1 relays
        assert len(delivered[1]) == 2

    def test_multiple_origins(self, world):
        rbs, delivered = attach_rbs(world)
        for pid in world.pids:
            rbs[pid].rbroadcast(f"from-{pid}")
        world.run()
        for pid in world.pids:
            assert sorted(delivered[pid]) == [
                (0, "from-0"), (1, "from-1"), (2, "from-2"), (3, "from-3")
            ]

    def test_crashed_receiver_delivers_nothing(self, world):
        rbs, delivered = attach_rbs(world)
        world.crash(3)
        rbs[0].rbroadcast("x")
        world.run()
        assert delivered[3] == []

    def test_delivered_log_records_time(self, world):
        rbs, delivered = attach_rbs(world)
        rbs[0].rbroadcast("x")
        world.run()
        assert rbs[1].delivered_log[0][1:] == (0, "x")
        assert rbs[1].delivered_log[0][0] == 1.0  # one hop

    def test_message_complexity_quadratic(self, world):
        rbs, _ = attach_rbs(world)
        before = world.network.sent_network
        rbs[0].rbroadcast("m")
        world.run()
        sent = world.network.sent_network - before
        # origin: n-1, each receiver relays to n-1 others: total n^2 - n - ...
        n = world.n
        assert (n - 1) <= sent <= n * (n - 1)
