"""Tests for Uniform Reliable Broadcast."""

import pytest

from repro.broadcast import ReliableBroadcast, UniformReliableBroadcast
from repro.sim import Component, DeadLink, FixedDelay, ReliableLink, World


@pytest.fixture
def world():
    return World(n=5, seed=0, default_link=ReliableLink(FixedDelay(1.0)))


def attach_urbs(world):
    urbs = world.attach_all(lambda pid: UniformReliableBroadcast())
    delivered = {pid: [] for pid in world.pids}
    for pid, urb in enumerate(urbs):
        urb.on_deliver(
            lambda origin, payload, pid=pid: delivered[pid].append(
                (origin, payload)
            )
        )
    world.start()
    return urbs, delivered


class TestUniformDelivery:
    def test_everyone_delivers(self, world):
        urbs, delivered = attach_urbs(world)
        urbs[2].urbroadcast("m")
        world.run()
        for pid in world.pids:
            assert delivered[pid] == [(2, "m")]

    def test_origin_does_not_deliver_before_majority(self, world):
        urbs, delivered = attach_urbs(world)
        urbs[0].urbroadcast("m")
        # At t=0 only the origin has seen it: no delivery yet.
        assert delivered[0] == []
        world.run(until=0.5)
        assert delivered[0] == []
        world.run()
        assert delivered[0] == [(0, "m")]

    def test_uniformity_under_origin_crash(self, world):
        """The defining scenario: the origin must not be able to deliver
        and crash while the message dies with it."""
        urbs, delivered = attach_urbs(world)
        urbs[0].urbroadcast("u")
        world.crash(0)  # crashes before majority echoes return
        world.run()
        # Origin delivered nothing (crashed pre-majority)...
        assert delivered[0] == []
        # ...and since its broadcast went out, all correct deliver.
        for pid in (1, 2, 3, 4):
            assert delivered[pid] == [(0, "u")]

    def test_contrast_with_plain_rb(self, world):
        """Plain RB lets a faulty origin deliver a message that dies with
        it if its sends are lost — URB exists to prevent exactly this."""
        rbs = world.attach_all(lambda pid: ReliableBroadcast())
        delivered = {pid: [] for pid in world.pids}
        for pid, rb in enumerate(rbs):
            rb.on_deliver(
                lambda origin, payload, pid=pid: delivered[pid].append(payload)
            )
        # All of p0's output links are dead: nobody else hears anything.
        for dst in range(1, 5):
            world.network.set_link(0, dst, DeadLink())
        world.start()
        rbs[0].rbroadcast("doomed")
        world.crash(0)
        world.run()
        assert delivered[0] == ["doomed"]  # the faulty origin delivered...
        for pid in (1, 2, 3, 4):
            assert delivered[pid] == []  # ...but no correct process ever does

    def test_urb_withholds_without_majority(self, world):
        urbs, delivered = attach_urbs(world)
        # p0 can only reach p1: 2 < majority (3) processes ever see it.
        for dst in (2, 3, 4):
            world.network.set_link(0, dst, DeadLink())
            world.network.set_link(1, dst, DeadLink())
        urbs[0].urbroadcast("stuck")
        world.run()
        assert delivered[0] == []
        assert delivered[1] == []

    def test_multiple_messages_ordering_free(self, world):
        urbs, delivered = attach_urbs(world)
        urbs[0].urbroadcast("a")
        urbs[3].urbroadcast("b")
        world.run()
        for pid in world.pids:
            assert sorted(delivered[pid]) == [(0, "a"), (3, "b")]

    def test_no_duplicate_delivery(self, world):
        urbs, delivered = attach_urbs(world)
        urbs[1].urbroadcast("once")
        world.run()
        assert all(len(delivered[pid]) == 1 for pid in world.pids)
