"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import _parse_crash_specs, build_parser, main
from repro.errors import ConfigurationError

#: The flags factored into the shared parent parser — `repro cluster` and
#: `repro proc run` must agree on them exactly.
SHARED_DESTS = ("transport", "stack", "trace_out", "duration", "crash")


def _subcommands(parser):
    return next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ).choices


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_consensus_args(self):
        args = build_parser().parse_args(
            ["consensus", "ec", "-n", "7", "--crash", "0:50",
             "--stabilize", "80", "--wan"]
        )
        assert args.algo == "ec"
        assert args.n == 7
        assert args.crash == ["0:50"]
        assert args.wan

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["consensus", "raft"])

    def test_node_args(self):
        args = build_parser().parse_args(
            ["node", "--book", "cluster.json", "--pid", "2",
             "--trace-out", "node-2.jsonl"]
        )
        assert args.book == "cluster.json"
        assert args.pid == 2
        assert args.trace_out == "node-2.jsonl"

    def test_node_requires_book_and_pid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node", "--pid", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node", "--book", "cluster.json"])

    def test_proc_run_args(self):
        args = build_parser().parse_args(
            ["proc", "run", "-n", "5", "--transport", "tcp",
             "--duration", "2", "--crash", "0:1.5", "--crash", "3:1.8"]
        )
        assert args.nodes == 5
        assert args.transport == "tcp"
        assert args.duration == 2.0
        assert args.crash == ["0:1.5", "3:1.8"]

    def test_parse_crash_specs(self):
        assert _parse_crash_specs(["0:1.5", "2:3"]) == [(0, 1.5), (2, 3.0)]
        assert _parse_crash_specs([]) == []
        for bad in ("1.5", "x:2", "0:y", "0:"):
            with pytest.raises(ConfigurationError):
                _parse_crash_specs([bad])

    def test_node_serve_addr(self):
        args = build_parser().parse_args(
            ["node", "--book", "b.json", "--pid", "0",
             "--serve-addr", "127.0.0.1:9000"]
        )
        assert args.serve_addr == "127.0.0.1:9000"

    def test_kv_verbs(self):
        args = build_parser().parse_args(
            ["kv", "put", "k", "42", "--connect", "127.0.0.1:9000"]
        )
        assert args.kv_command == "put"
        assert args.key == "k" and args.value == "42"
        args = build_parser().parse_args(
            ["kv", "serve", "-n", "5", "--duration", "3"]
        )
        assert args.kv_command == "serve" and args.nodes == 5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kv", "get", "k"])  # needs --connect

    def test_load_args(self):
        args = build_parser().parse_args(
            ["load", "--proc", "3", "--mode", "open", "--rate", "50",
             "--clients", "100", "--crash", "0:2"]
        )
        assert args.proc == 3 and args.rate == 50.0 and args.clients == 100
        with pytest.raises(SystemExit):  # --connect and --proc are exclusive
            build_parser().parse_args(
                ["load", "--connect", "h:1", "--proc", "3"]
            )


class TestSharedClusterOptions:
    """`repro cluster` and `repro proc run` share one options surface
    (the parent-parser satellite): same flags, same help, same defaults."""

    def _parsers(self):
        top = _subcommands(build_parser())
        return top["cluster"], _subcommands(top["proc"])["run"]

    def _action(self, parser, dest):
        matches = [a for a in parser._actions if a.dest == dest]
        assert len(matches) == 1, f"{dest!r} defined {len(matches)} times"
        return matches[0]

    @pytest.mark.parametrize("dest", SHARED_DESTS)
    def test_flag_parity(self, dest):
        cluster, proc_run = self._parsers()
        ours, theirs = self._action(cluster, dest), self._action(proc_run, dest)
        assert ours.option_strings == theirs.option_strings
        assert ours.help == theirs.help
        assert ours.choices == theirs.choices
        assert ours.default == theirs.default

    def test_help_text_parity(self):
        """The rendered --help blocks for the shared group are identical."""

        def shared_block(parser):
            groups = [
                g for g in parser._action_groups
                if g.title == "shared cluster options"
            ]
            assert len(groups) == 1
            fmt = parser._get_formatter()
            fmt.start_section(groups[0].title)
            fmt.add_arguments(groups[0]._group_actions)
            fmt.end_section()
            return fmt.format_help()

        cluster, proc_run = self._parsers()
        assert shared_block(cluster) == shared_block(proc_run)


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp in ("E1", "E5", "E9", "A4", "N3"):
            assert exp in out

    def test_cluster_rsm_rejects_the_adaptive_path(self, capsys):
        # The adaptive (run-until-stable) flow has no proposal script; an
        # rsm deployment without --duration/--crash/--virtual is an error.
        assert main(["cluster", "--stack", "rsm"]) == 2
        assert "scripted" in capsys.readouterr().err

    def test_demo_runs_and_decides(self, capsys):
        assert main(["demo", "-n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "leader timeline" in out
        assert "'termination': True" in out

    def test_consensus_success_exit_code(self, capsys):
        assert main(["consensus", "ec", "-n", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out

    def test_consensus_with_crash_and_stabilization(self, capsys):
        code = main([
            "consensus", "ct", "-n", "5", "--seed", "2",
            "--crash", "0:30", "--stabilize", "60",
        ])
        assert code == 0

    def test_validate_small(self, capsys):
        assert main(["validate", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "all good" in out

    def test_compare_fd(self, capsys):
        assert main(["compare-fd", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        # Either stored tables or the how-to-generate hint.
        assert "experiment" in out.lower()
