"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import (
    _parse_crash_specs,
    _parse_degrade_specs,
    build_parser,
    main,
)
from repro.errors import ConfigurationError

#: The flags factored into the shared parent parser — `repro cluster` and
#: `repro proc run` must agree on them exactly.
SHARED_DESTS = (
    "transport", "stack", "trace_out", "duration", "crash",
    "loss", "degrade", "scenario", "ship_to",
)


def _subcommands(parser):
    return next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ).choices


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_consensus_args(self):
        args = build_parser().parse_args(
            ["consensus", "ec", "-n", "7", "--crash", "0:50",
             "--stabilize", "80", "--wan"]
        )
        assert args.algo == "ec"
        assert args.n == 7
        assert args.crash == ["0:50"]
        assert args.wan

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["consensus", "raft"])

    def test_node_args(self):
        args = build_parser().parse_args(
            ["node", "--book", "cluster.json", "--pid", "2",
             "--trace-out", "node-2.jsonl"]
        )
        assert args.book == "cluster.json"
        assert args.pid == 2
        assert args.trace_out == "node-2.jsonl"

    def test_node_requires_book_and_pid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node", "--pid", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["node", "--book", "cluster.json"])

    def test_proc_run_args(self):
        args = build_parser().parse_args(
            ["proc", "run", "-n", "5", "--transport", "tcp",
             "--duration", "2", "--crash", "0:1.5", "--crash", "3:1.8"]
        )
        assert args.nodes == 5
        assert args.transport == "tcp"
        assert args.duration == 2.0
        assert args.crash == ["0:1.5", "3:1.8"]

    def test_parse_crash_specs(self):
        assert _parse_crash_specs(["0:1.5", "2:3"]) == [(0, 1.5), (2, 3.0)]
        assert _parse_crash_specs([]) == []
        for bad in ("1.5", "x:2", "0:y", "0:"):
            with pytest.raises(ConfigurationError):
                _parse_crash_specs([bad])

    def test_parse_degrade_specs(self):
        assert _parse_degrade_specs(["0:1:0.5"]) == [(0, 1, 0.5, None)]
        assert _parse_degrade_specs(["2:0:0.3:0.02"]) == [(2, 0, 0.3, 0.02)]
        assert _parse_degrade_specs([]) == []
        for bad in ("0:1", "x:1:0.5", "0:1:2.0", "0:1:0.5:-1"):
            with pytest.raises(ConfigurationError):
                _parse_degrade_specs([bad])

    def test_scenario_args(self):
        args = build_parser().parse_args(
            ["scenario", "gen", "--nodes", "4", "--seed", "9",
             "--crashes", "1"]
        )
        assert args.nodes == 4 and args.seed == 9 and args.crashes == 1
        args = build_parser().parse_args(
            ["scenario", "run", "--file", "nem.json", "--runtime", "proc"]
        )
        assert args.file == "nem.json" and args.runtime == "proc"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "--runtime", "sim"])

    def test_node_serve_addr(self):
        args = build_parser().parse_args(
            ["node", "--book", "b.json", "--pid", "0",
             "--serve-addr", "127.0.0.1:9000"]
        )
        assert args.serve_addr == "127.0.0.1:9000"

    def test_kv_verbs(self):
        args = build_parser().parse_args(
            ["kv", "put", "k", "42", "--connect", "127.0.0.1:9000"]
        )
        assert args.kv_command == "put"
        assert args.key == "k" and args.value == "42"
        args = build_parser().parse_args(
            ["kv", "serve", "-n", "5", "--duration", "3"]
        )
        assert args.kv_command == "serve" and args.nodes == 5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["kv", "get", "k"])  # needs --connect

    def test_load_args(self):
        args = build_parser().parse_args(
            ["load", "--proc", "3", "--mode", "open", "--rate", "50",
             "--clients", "100", "--crash", "0:2"]
        )
        assert args.proc == 3 and args.rate == 50.0 and args.clients == 100
        with pytest.raises(SystemExit):  # --connect and --proc are exclusive
            build_parser().parse_args(
                ["load", "--connect", "h:1", "--proc", "3"]
            )

    def test_watch_args(self):
        args = build_parser().parse_args(
            ["watch", "--proc", "3", "--duration", "5", "--interval", "0.5"]
        )
        assert args.proc == 3 and args.duration == 5.0
        assert args.interval == 0.5
        args = build_parser().parse_args(["watch", "--connect", "127.0.0.1:7"])
        assert args.connect == "127.0.0.1:7" and args.duration is None
        with pytest.raises(SystemExit):  # one of --connect/--proc required
            build_parser().parse_args(["watch"])
        with pytest.raises(SystemExit):  # ... and they are exclusive
            build_parser().parse_args(
                ["watch", "--connect", "h:1", "--proc", "3"]
            )

    def test_trace_spans_args(self):
        args = build_parser().parse_args(["trace", "spans", "a.jsonl", "b.jsonl"])
        assert args.trace_command == "spans"
        assert args.files == ["a.jsonl", "b.jsonl"]

    def test_ship_to_reaches_node_and_scenario_run(self):
        args = build_parser().parse_args(
            ["node", "--book", "b.json", "--pid", "0",
             "--ship-to", "127.0.0.1:7000"]
        )
        assert args.ship_to == "127.0.0.1:7000"
        args = build_parser().parse_args(
            ["scenario", "run", "--nodes", "3", "--ship-to", "127.0.0.1:7000"]
        )
        assert args.ship_to == "127.0.0.1:7000"


class TestSharedClusterOptions:
    """`repro cluster` and `repro proc run` share one options surface
    (the parent-parser satellite): same flags, same help, same defaults."""

    def _parsers(self):
        top = _subcommands(build_parser())
        return top["cluster"], _subcommands(top["proc"])["run"]

    def _action(self, parser, dest):
        matches = [a for a in parser._actions if a.dest == dest]
        assert len(matches) == 1, f"{dest!r} defined {len(matches)} times"
        return matches[0]

    @pytest.mark.parametrize("dest", SHARED_DESTS)
    def test_flag_parity(self, dest):
        cluster, proc_run = self._parsers()
        ours, theirs = self._action(cluster, dest), self._action(proc_run, dest)
        assert ours.option_strings == theirs.option_strings
        assert ours.help == theirs.help
        assert ours.choices == theirs.choices
        assert ours.default == theirs.default

    def test_help_text_parity(self):
        """The rendered --help blocks for the shared group are identical."""

        def shared_block(parser):
            groups = [
                g for g in parser._action_groups
                if g.title == "shared cluster options"
            ]
            assert len(groups) == 1
            fmt = parser._get_formatter()
            fmt.start_section(groups[0].title)
            fmt.add_arguments(groups[0]._group_actions)
            fmt.end_section()
            return fmt.format_help()

        cluster, proc_run = self._parsers()
        assert shared_block(cluster) == shared_block(proc_run)


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp in ("E1", "E5", "E9", "A4", "N3"):
            assert exp in out

    def test_cluster_rsm_rejects_the_adaptive_path(self, capsys):
        # The adaptive (run-until-stable) flow has no proposal script; an
        # rsm deployment without --duration/--crash/--virtual is an error.
        assert main(["cluster", "--stack", "rsm"]) == 2
        assert "scripted" in capsys.readouterr().err

    def test_demo_runs_and_decides(self, capsys):
        assert main(["demo", "-n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "leader timeline" in out
        assert "'termination': True" in out

    def test_consensus_success_exit_code(self, capsys):
        assert main(["consensus", "ec", "-n", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out

    def test_consensus_with_crash_and_stabilization(self, capsys):
        code = main([
            "consensus", "ct", "-n", "5", "--seed", "2",
            "--crash", "0:30", "--stabilize", "60",
        ])
        assert code == 0

    def test_validate_small(self, capsys):
        assert main(["validate", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "all good" in out

    def test_compare_fd(self, capsys):
        assert main(["compare-fd", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        # Either stored tables or the how-to-generate hint.
        assert "experiment" in out.lower()

    def test_scenario_gen_is_deterministic(self, capsys):
        argv = ["scenario", "gen", "--nodes", "3", "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first  # byte-identical schedule
        assert main(["scenario", "gen", "--nodes", "3", "--seed", "8"]) == 0
        assert capsys.readouterr().out != first

    def test_scenario_gen_writes_the_canonical_file(self, tmp_path, capsys):
        out = tmp_path / "nem.json"
        assert main(
            ["scenario", "gen", "--seed", "7", "--out", str(out)]
        ) == 0
        capsys.readouterr()  # drop the "wrote ..." confirmation line
        assert main(["scenario", "gen", "--seed", "7"]) == 0
        assert out.read_text() == capsys.readouterr().out

    def test_scenario_run_on_the_virtual_runtime(self, capsys):
        assert main(
            ["scenario", "run", "--nodes", "3", "--seed", "7",
             "--partitions", "1", "--stalls", "0", "--storms", "0",
             "--degrades", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict" in out.lower()
        assert "VIOLATED" not in out
