"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_consensus_args(self):
        args = build_parser().parse_args(
            ["consensus", "ec", "-n", "7", "--crash", "0:50",
             "--stabilize", "80", "--wan"]
        )
        assert args.algo == "ec"
        assert args.n == 7
        assert args.crash == ["0:50"]
        assert args.wan

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["consensus", "raft"])


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp in ("E1", "E5", "E9", "A4"):
            assert exp in out

    def test_demo_runs_and_decides(self, capsys):
        assert main(["demo", "-n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "leader timeline" in out
        assert "'termination': True" in out

    def test_consensus_success_exit_code(self, capsys):
        assert main(["consensus", "ec", "-n", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out

    def test_consensus_with_crash_and_stabilization(self, capsys):
        code = main([
            "consensus", "ct", "-n", "5", "--seed", "2",
            "--crash", "0:30", "--stabilize", "60",
        ])
        assert code == 0

    def test_validate_small(self, capsys):
        assert main(["validate", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "all good" in out

    def test_compare_fd(self, capsys):
        assert main(["compare-fd", "-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        # Either stored tables or the how-to-generate hint.
        assert "experiment" in out.lower()
