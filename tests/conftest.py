"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.sim import FixedDelay, ReliableLink, UniformDelay, World


@pytest.fixture
def world():
    """A small 5-process world with fixed 1.0 delays (fully predictable)."""
    return World(n=5, seed=42, default_link=ReliableLink(FixedDelay(1.0)))


@pytest.fixture
def jittery_world():
    """A 5-process world with mild random jitter."""
    return World(n=5, seed=42, default_link=ReliableLink(UniformDelay(0.5, 2.0)))


def pytest_addoption(parser):
    parser.addoption(
        "--thorough",
        action="store_true",
        default=False,
        help="run the full randomized batteries (slower)",
    )


@pytest.fixture
def thorough(request):
    """True when the slow randomized batteries were requested."""
    return request.config.getoption("--thorough")
