"""Tests for repro.types and repro.errors."""

import pytest

from repro.errors import (
    ConfigurationError,
    CrashedProcessError,
    PropertyViolation,
    ProtocolError,
    ReproError,
    SimulationError,
    TaskError,
)
from repro.types import validate_pid


class TestValidatePid:
    def test_accepts_valid_ids(self):
        for pid in range(5):
            assert validate_pid(pid, 5) == pid

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_pid(-1, 5)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            validate_pid(5, 5)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            validate_pid(True, 5)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            validate_pid("0", 5)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            SimulationError,
            CrashedProcessError,
            TaskError,
            ProtocolError,
            PropertyViolation,
        ):
            assert issubclass(exc, ReproError)

    def test_crashed_is_simulation_error(self):
        assert issubclass(CrashedProcessError, SimulationError)

    def test_task_error_is_simulation_error(self):
        assert issubclass(TaskError, SimulationError)
