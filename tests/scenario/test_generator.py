"""The seeded nemesis: same seed => byte-identical schedule, sane shape."""

import pytest

from repro.errors import ConfigurationError
from repro.scenario import generate_scenario


def test_same_seed_is_byte_identical():
    a = generate_scenario(n=4, seed=7)
    b = generate_scenario(n=4, seed=7)
    assert a.to_json() == b.to_json()


def test_different_seed_differs():
    assert (
        generate_scenario(n=4, seed=7).to_json()
        != generate_scenario(n=4, seed=8).to_json()
    )


def test_counts_shape_the_schedule():
    scenario = generate_scenario(
        n=5, seed=3, partitions=2, stalls=1, storms=1, degrades=1,
        skews=1, crashes=2,
    )
    ops = [event.op for event in scenario.events]
    assert ops.count("partition") == 2 and ops.count("heal") == 2
    assert ops.count("stall") == 1 and ops.count("resume") == 1
    assert ops.count("storm") == 1 and ops.count("calm") == 1
    assert ops.count("degrade") == 1 and ops.count("restore") == 1
    assert ops.count("skew") == 1
    assert ops.count("crash") == 2


def test_every_fault_window_closes():
    """Partitions heal, stalls resume, storms calm — in order."""
    scenario = generate_scenario(
        n=3, seed=11, partitions=2, stalls=2, storms=2, degrades=2,
    )
    closer = {"partition": "heal", "stall": "resume", "storm": "calm",
              "degrade": "restore"}
    events = scenario.events
    for i, event in enumerate(events):
        if event.op in closer:
            following = [e.op for e in events[i + 1:]]
            assert closer[event.op] in following, (
                f"{event.op} at t={event.time} never closes"
            )


def test_consensus_runs_in_the_well_behaved_suffix():
    scenario = generate_scenario(n=3, seed=5, crashes=1)
    assert scenario.propose_after > scenario.fault_end
    assert scenario.duration > scenario.propose_after
    # Crashes come last: everything after the first crash is a crash.
    ops = [event.op for event in scenario.events]
    first = ops.index("crash")
    assert set(ops[first:]) == {"crash"}


def test_rejects_degenerate_requests():
    with pytest.raises(ConfigurationError, match="n >= 2"):
        generate_scenario(n=1, seed=0)
    with pytest.raises(ConfigurationError, match="must be >= 0"):
        generate_scenario(n=3, seed=0, stalls=-1)
    with pytest.raises(ConfigurationError, match="majority"):
        generate_scenario(n=3, seed=0, crashes=2)
    with pytest.raises(ConfigurationError, match="after the declared"):
        generate_scenario(n=3, seed=0, duration=0.1)


def test_provenance_is_recorded():
    scenario = generate_scenario(n=3, seed=42)
    assert scenario.seed == 42
    assert scenario.n == 3
    assert scenario.name == "nemesis-n3-seed42"
