"""Scenario DSL: eager validation, canonical ordering, JSON round-trips."""

import pytest

from repro.cluster import FAULT_VERBS
from repro.errors import ConfigurationError
from repro.scenario import OP_SPECS, Scenario, ScenarioEvent


# ------------------------------------------------------------ the op space
def test_op_specs_cover_exactly_the_fault_verbs():
    """The scenario op space IS the ClusterAPI fault-verb surface."""
    assert set(OP_SPECS) == set(FAULT_VERBS)


# ------------------------------------------------------- event validation
def test_unknown_op_rejected():
    with pytest.raises(ConfigurationError, match="unknown scenario op"):
        ScenarioEvent(time=1.0, op="reboot", args={"pid": 0})


def test_missing_required_args_rejected():
    with pytest.raises(ConfigurationError, match="missing arg"):
        ScenarioEvent(time=1.0, op="stall", args={})
    with pytest.raises(ConfigurationError, match="missing arg"):
        ScenarioEvent(time=1.0, op="degrade", args={"src": 0})


def test_unknown_args_rejected():
    with pytest.raises(ConfigurationError, match="unknown arg"):
        ScenarioEvent(time=1.0, op="heal", args={"pid": 0})


def test_negative_time_rejected():
    with pytest.raises(ConfigurationError, match=">= 0"):
        ScenarioEvent(time=-0.5, op="heal")


def test_loss_bounds_match_the_fault_plan():
    # 1.0 is a legal (total) loss; only values outside [0, 1] are errors.
    ScenarioEvent(time=0.0, op="storm", args={"loss": 1.0})
    with pytest.raises(ConfigurationError, match=r"outside \[0, 1\]"):
        ScenarioEvent(time=0.0, op="storm", args={"loss": 1.5})
    with pytest.raises(ConfigurationError, match=r"outside \[0, 1\]"):
        ScenarioEvent(
            time=0.0, op="degrade", args={"src": 0, "dst": 1, "loss": -0.1}
        )


def test_partition_groups_must_be_lists_of_lists():
    with pytest.raises(ConfigurationError, match="list of pid lists"):
        ScenarioEvent(time=0.0, op="partition", args={"groups": [0, 1]})


# ---------------------------------------------------- scenario validation
def test_pid_range_checked_against_n():
    with pytest.raises(ConfigurationError, match="out of range"):
        Scenario(n=3, events=[{"t": 1.0, "op": "crash", "pid": 3}])
    with pytest.raises(ConfigurationError, match="out of range"):
        Scenario(n=3, events=[{"t": 1.0, "op": "partition", "groups": [[5]]}])


def test_events_after_duration_rejected():
    with pytest.raises(ConfigurationError, match="after the declared"):
        Scenario(duration=2.0, events=[{"t": 3.0, "op": "heal"}])


def test_events_sorted_canonically_by_time():
    scenario = Scenario(events=[
        {"t": 2.0, "op": "heal"},
        {"t": 1.0, "op": "partition", "groups": [[0]]},
    ])
    assert [event.op for event in scenario.events] == ["partition", "heal"]
    assert scenario.fault_end == 2.0


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="unknown scenario keys"):
        Scenario.from_dict({"events": [], "nemesis": True})


# ------------------------------------------------------------------ serde
def demo_scenario():
    return Scenario(
        name="demo", n=3, period=0.05, duration=4.0, propose_after=2.5,
        events=[
            {"t": 0.5, "op": "partition", "groups": [[0], [1, 2]]},
            {"t": 1.0, "op": "heal"},
            {"t": 1.5, "op": "stall", "pid": 2},
            {"t": 2.0, "op": "resume", "pid": 2},
        ],
    )


def test_json_roundtrip_is_byte_identical():
    scenario = demo_scenario()
    text = scenario.to_json()
    assert Scenario.from_json(text).to_json() == text
    assert text.endswith("\n")


def test_save_load_roundtrip(tmp_path):
    scenario = demo_scenario()
    path = scenario.save(tmp_path / "demo.json")
    loaded = Scenario.load(path)
    assert loaded.to_json() == scenario.to_json()
    assert len(loaded) == 4


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
        Scenario.load(path)
    with pytest.raises(ConfigurationError, match="cannot read"):
        Scenario.load(tmp_path / "absent.json")


def test_from_json_rejects_non_object():
    with pytest.raises(ConfigurationError, match="must be an object"):
        Scenario.from_json("[1, 2]")
