"""Scenarios on the deterministic substrate: replay, re-stabilization,
wrongful suspicion — the virtual-clock half of the ISSUE's test matrix
(the SIGSTOP/process half lives in tests/integration/test_scenario_proc.py).
"""

import asyncio

import pytest

from repro.analysis.qos import qos_report
from repro.cluster import LocalCluster
from repro.errors import ConfigurationError
from repro.scenario import (
    Scenario,
    apply_scenario,
    generate_scenario,
    run_scenario,
)

PERIOD = 0.05
TIMEOUT = 2.4 * PERIOD  # the paper-scaled initial detection timeout


def run_once(scenario, seed=1):
    """One virtual-clock run; returns (result, trace events, verdicts)."""
    cluster = LocalCluster(
        n=scenario.n, transport="loopback", clock="virtual", seed=seed,
        duration=scenario.duration,
    )
    cluster.deploy_standard_stack(
        stack="ring", period=scenario.period,
        propose_after=scenario.propose_after,
    )
    result = asyncio.run(run_scenario(cluster, scenario))
    return result, cluster.trace


def handmade(events, duration=6.0, propose_after=4.0):
    return Scenario(
        n=3, period=PERIOD, duration=duration, propose_after=propose_after,
        events=events,
    )


# ----------------------------------------------------------- determinism
def test_same_scenario_and_seed_replay_byte_identically():
    scenario = generate_scenario(n=3, seed=13, crashes=1)
    result_a, trace_a = run_once(scenario)
    result_b, trace_b = run_once(scenario)
    assert trace_a.events == trace_b.events
    assert {k: bool(v) for k, v in result_a["verdicts"].items()} == {
        k: bool(v) for k, v in result_b["verdicts"].items()
    }
    assert result_a["ok"] and result_a["quiescent"]


def test_generated_scenarios_end_verdicts_ok():
    # The generator's shape guarantee: consensus runs in the well-behaved
    # suffix, so every generated scenario passes its own postmortem.
    for seed in (1, 2):
        result, _ = run_once(generate_scenario(n=3, seed=seed))
        assert result["ok"], (seed, result["verdicts"])


# ------------------------------------------- partition, heal, re-stabilize
def test_partition_then_heal_restabilizes_the_leader():
    scenario = handmade([
        {"t": 0.5, "op": "partition", "groups": [[2]]},
        {"t": 0.5 + 4 * TIMEOUT, "op": "heal"},
    ])
    result, trace = run_once(scenario)
    assert result["ok"], result["verdicts"]
    report = qos_report(trace, period=PERIOD, n=3)
    # The cut lasted several timeouts: the majority side wrongly suspected
    # the isolated (but correct) node, and the isolated side its leader...
    assert len(report.mistakes) >= 1
    suspects = {m.suspect for m in report.mistakes}
    assert 2 in suspects
    # ...and after the heal Property 1 re-stabilized: the suspicion of the
    # eventual leader was corrected (the detector is leader-based — only
    # the leader heartbeats, so only that mistake *can* be corrected) and
    # one leader held for good, no earlier than the cut.
    corrected = {m.suspect for m in report.mistakes if m.end is not None}
    assert report.stable_leader in corrected or not any(
        m.suspect == report.stable_leader for m in report.mistakes
    )
    assert report.leader_stabilized_at is not None
    assert report.leader_stabilized_at > 0.5  # after the fault started


def test_stall_longer_than_the_timeout_is_a_counted_mistake():
    victim = 1
    scenario = handmade([
        {"t": 0.5, "op": "stall", "pid": victim},
        {"t": 0.5 + 4 * TIMEOUT, "op": "resume", "pid": victim},
    ])
    result, trace = run_once(scenario)
    assert result["ok"], result["verdicts"]
    report = qos_report(trace, period=PERIOD, n=3)
    # A stalled node is silent but correct — the detectors must suspect it
    # (that is the timeout doing its job) and `repro trace qos` must count
    # the suspicion as a wrongful one.
    wrongful = [m for m in report.mistakes if m.suspect == victim]
    assert len(wrongful) >= 1
    # The run still stabilizes on a leader and passes its postmortem.
    assert report.leader_stabilized_at is not None


# -------------------------------------------------------- armed vs. fitted
def test_apply_scenario_rejects_mismatched_n():
    scenario = generate_scenario(n=5, seed=1)
    cluster = LocalCluster(n=3, clock="virtual", duration=scenario.duration)
    with pytest.raises(ConfigurationError, match="built for n=5"):
        apply_scenario(cluster, scenario)


def test_apply_scenario_rejects_a_run_too_short_for_the_schedule():
    scenario = handmade([{"t": 3.0, "op": "heal"}])
    cluster = LocalCluster(n=3, clock="virtual", duration=1.0)
    with pytest.raises(ConfigurationError, match="only lasts"):
        apply_scenario(cluster, scenario)


def test_scenario_run_event_is_traced():
    scenario = generate_scenario(n=3, seed=9, name="traced")
    _, trace = run_once(scenario)
    runs = [ev for ev in trace.events if ev.kind == "scenario.run"]
    assert len(runs) == 1
    assert runs[0].get("name") == "traced"
    assert runs[0].get("seed") == 9
