"""Tests for workload generators and canonical scenarios."""

import random

import pytest

from repro.sim.links import FairLossyLink, PartiallySynchronousLink, ReliableLink
from repro.workloads import (
    asynchronous_link,
    cascade,
    consensus_run,
    fair_lossy_link,
    lan_link,
    minority_crashes,
    nice_run,
    partially_synchronous_link,
    single_crash,
    theorem3_run,
    wan_link,
)


class TestNetworkFactories:
    def test_types(self):
        assert isinstance(lan_link(), ReliableLink)
        assert isinstance(wan_link(), ReliableLink)
        assert isinstance(asynchronous_link(), ReliableLink)
        assert isinstance(partially_synchronous_link(), PartiallySynchronousLink)
        assert isinstance(fair_lossy_link(), FairLossyLink)

    def test_psync_parameters(self):
        link = partially_synchronous_link(gst=50.0, delta=3.0)
        assert link.gst == 50.0
        assert link.delta == 3.0


class TestCrashGenerators:
    def test_minority_never_reaches_half(self):
        for n in (3, 4, 5, 8, 9):
            for seed in range(10):
                sched = minority_crashes(random.Random(seed), n, (0, 100))
                assert len(sched) < n / 2

    def test_cascade_ordering(self):
        sched = cascade([3, 1, 4], start=10.0, gap=5.0)
        assert [(e.pid, e.time) for e in sched.events] == [
            (3, 10.0), (1, 15.0), (4, 20.0)
        ]

    def test_single(self):
        sched = single_crash(2, 7.0)
        assert sched.crashed_pids == {2}


class TestScenarios:
    def test_nice_run_has_no_crashes(self):
        run = nice_run("ec", n=4, seed=0)
        run.run(until=200.0)
        assert run.world.crashed_pids == frozenset()
        assert run.decided

    def test_consensus_run_custom_values(self):
        run = consensus_run("ec", n=3, seed=0, pre_behavior="ideal",
                            values=["x", "y", "z"]).run(until=200.0)
        assert run.decisions[0] in ("x", "y", "z")

    def test_unknown_algo_raises(self):
        with pytest.raises(KeyError):
            consensus_run("bogus", n=3)

    def test_run_chaining_and_decided_property(self):
        run = nice_run("ct", n=3, seed=1)
        assert not run.decided
        assert run.run(until=200.0) is run
        assert run.decided

    def test_theorem3_world_shape(self):
        run = theorem3_run("ec", n=5, leader=3, stabilize_time=50.0)
        # Pre-stabilization: everyone suspects everyone and trusts itself.
        run.run(until=30.0)
        fd = run.world.component(1, "fd")
        assert fd.trusted() == 1
        assert fd.suspected() == {0, 2, 3, 4}
        # Post-stabilization: all trust the designated leader; everyone else
        # stays slandered.
        run.run(until=400.0)
        fd = run.world.component(1, "fd")
        assert fd.trusted() == 3
        assert fd.suspected() == {0, 2, 4}
