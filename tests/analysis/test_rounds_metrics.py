"""Unit tests distinguishing the two rounds-after-stabilization metrics."""

from repro.analysis import round_at, rounds_after, rounds_after_system
from repro.sim import Trace


def staggered_trace():
    """Two processes at different rounds when t=100 passes; decision in
    round 12."""
    trace = Trace()
    # p0 enters rounds 1..10 before t=100, p1 lags at round 8.
    for r in range(1, 11):
        trace.record(r * 9.0, "round", 0, algo="x", round=r)
    for r in range(1, 9):
        trace.record(r * 11.0, "round", 1, algo="x", round=r)
    for pid in (0, 1):
        trace.record(110.0, "round", pid, algo="x", round=11)
        trace.record(120.0, "round", pid, algo="x", round=12)
        trace.record(130.0, "decide", pid, algo="x", value="v", round=12)
    return trace


class TestRoundMetrics:
    def test_round_at(self):
        trace = staggered_trace()
        assert round_at(trace, 0, 100.0, "x") == 10
        assert round_at(trace, 1, 100.0, "x") == 8
        assert round_at(trace, 0, 0.0, "x") == 0

    def test_rounds_after_per_process(self):
        trace = staggered_trace()
        extra = rounds_after(trace, 100.0, "x")
        # Per-process accounting: p0 was at 10 (needs 3 incl. its own),
        # p1 at 8 (needs 5).
        assert extra == {0: 3, 1: 5}

    def test_rounds_after_system_uses_frontier(self):
        trace = staggered_trace()
        # System frontier at t=100 is round 10 (p0); decision round 12:
        # two fresh rounds were started after stabilization.
        assert rounds_after_system(trace, 100.0, "x") == 2

    def test_rounds_after_system_none_without_decision(self):
        trace = Trace()
        trace.record(1.0, "round", 0, algo="x", round=1)
        assert rounds_after_system(trace, 0.5, "x") is None

    def test_rounds_after_none_round_decision(self):
        trace = Trace()
        trace.record(1.0, "decide", 0, algo="x", value="v", round=None)
        assert rounds_after(trace, 0.0, "x") == {0: None}
