"""QoS math on hand-built traces with known answers.

Each fixture constructs a tiny trace by hand — fd output flips, crash
markers, send events — so every number the analyzer reports (T_D, mistake
intervals, λ_M, T_M, leader stabilization, msgs/period) has a value you
can check on paper.
"""

import pytest

from repro.analysis import Mistake, qos_report, transformation_bound
from repro.obs import MemorySink


def _base(n=3):
    """All *n* processes boot trusting p0 and suspecting nobody."""
    sink = MemorySink()
    for pid in range(n):
        sink.record(0.0, "fd", pid, channel="fd",
                    suspected=frozenset(), trusted=0)
    return sink


def test_transformation_bound_formula():
    assert [transformation_bound(n) for n in (2, 3, 5)] == [2, 4, 8]


def test_detection_time_is_worst_over_observers():
    sink = _base()
    sink.record(10.0, "crash", 0)
    sink.record(13.0, "fd", 1, channel="fd",
                suspected=frozenset({0}), trusted=1)
    sink.record(14.0, "fd", 2, channel="fd",
                suspected=frozenset({0}), trusted=1)
    report = qos_report(sink)
    assert report.n == 3
    assert report.correct == frozenset({1, 2})
    assert report.crashes == {0: 10.0}
    assert report.detection == {0: pytest.approx(4.0)}  # p2 converges last
    assert report.max_detection == pytest.approx(4.0)
    assert report.mistakes == []


def test_post_crash_suspicion_is_not_a_mistake_but_early_one_is():
    sink = _base()
    # p1 suspects p2 while p2 is alive (a mistake), retracts 3 units later.
    sink.record(5.0, "fd", 1, channel="fd",
                suspected=frozenset({2}), trusted=0)
    sink.record(8.0, "fd", 1, channel="fd",
                suspected=frozenset(), trusted=0)
    sink.record(20.0, "crash", 2)
    # Suspecting p2 *after* its crash is correct, not a mistake.
    sink.record(22.0, "fd", 0, channel="fd",
                suspected=frozenset({2}), trusted=0)
    sink.record(22.0, "fd", 1, channel="fd",
                suspected=frozenset({2}), trusted=0)
    report = qos_report(sink)
    assert report.mistakes == [Mistake(1, 2, 5.0, 8.0)]
    assert report.mistakes[0].duration == pytest.approx(3.0)
    assert report.mean_mistake_duration == pytest.approx(3.0)
    assert report.mistake_rate == pytest.approx(1 / 22.0)
    assert report.unresolved_mistakes == 0


def test_premature_suspicion_of_a_later_crasher_ends_at_the_crash():
    sink = _base()
    sink.record(5.0, "fd", 1, channel="fd",
                suspected=frozenset({0}), trusted=1)
    sink.record(9.0, "crash", 0)
    sink.record(12.0, "fd", 2, channel="fd",
                suspected=frozenset({0}), trusted=1)
    report = qos_report(sink)
    # p1's suspicion opened while p0 was alive, became true at the crash.
    assert report.mistakes == [Mistake(1, 0, 5.0, 9.0)]
    # p1 suspected p0 from t=5 permanently, p2 from t=12: T_D = 12 - 9.
    assert report.detection == {0: pytest.approx(3.0)}


def test_never_retracted_mistake_is_unresolved():
    sink = _base()
    sink.record(5.0, "fd", 1, channel="fd",
                suspected=frozenset({2}), trusted=0)
    sink.record(30.0, "fd", 0, channel="fd",
                suspected=frozenset(), trusted=0)
    report = qos_report(sink)
    assert report.mistakes == [Mistake(1, 2, 5.0, None)]
    assert report.mistakes[0].duration is None
    assert report.unresolved_mistakes == 1
    assert report.mean_mistake_duration is None


def test_leader_stabilization_is_the_last_flip_to_the_final_leader():
    sink = _base()
    sink.record(10.0, "crash", 0)
    sink.record(13.0, "fd", 1, channel="fd",
                suspected=frozenset({0}), trusted=1)
    sink.record(14.0, "fd", 2, channel="fd",
                suspected=frozenset({0}), trusted=1)
    report = qos_report(sink)
    assert report.stable_leader == 1
    assert report.leader_stabilized_at == pytest.approx(14.0)


def test_no_stabilization_when_final_leaders_disagree():
    sink = _base()
    sink.record(10.0, "crash", 0)
    sink.record(13.0, "fd", 1, channel="fd",
                suspected=frozenset({0}), trusted=1)
    sink.record(14.0, "fd", 2, channel="fd",
                suspected=frozenset({0}), trusted=2)
    report = qos_report(sink)
    assert report.stable_leader is None
    assert report.leader_stabilized_at is None


def _with_cost(sends_per_period: int, period: float = 5.0):
    """Clean detection at t=14, then *sends_per_period* fdp sends/period
    over the measurement window [19, 49]."""
    sink = _base()
    sink.record(10.0, "crash", 0)
    sink.record(13.0, "fd", 1, channel="fd",
                suspected=frozenset({0}), trusted=1)
    sink.record(14.0, "fd", 2, channel="fd",
                suspected=frozenset({0}), trusted=1)
    # Window starts at max(stabilization, crash + T_D) + period = 19.
    start, end = 19.0, 49.0
    periods = (end - start) / period
    total = int(sends_per_period * periods)
    for i in range(total):
        t = start + (i + 0.5) * (end - start) / total
        sink.record(t, "send", 1, channel="fdp", src=1, dst=2, tag="list")
    sink.record(end, "fd", 1, channel="fd",
                suspected=frozenset({0}), trusted=1)
    return qos_report(sink, period=period)


def test_message_cost_respects_the_bound():
    report = _with_cost(sends_per_period=4)  # exactly 2(n-1)
    assert report.cost_window == (pytest.approx(19.0), pytest.approx(49.0))
    assert report.message_cost["fdp"] == pytest.approx(4.0)
    assert report.bound_value == 4.0
    assert report.bound_ok is True


def test_message_cost_flags_a_bound_violation():
    report = _with_cost(sends_per_period=8)  # double the paper's cost
    assert report.message_cost["fdp"] == pytest.approx(8.0)
    assert report.bound_ok is False
    assert "VIOLATED" in report.format()


def test_cost_skipped_without_a_period_and_without_a_stable_suffix():
    no_period = _base()
    no_period.record(10.0, "crash", 0)
    report = qos_report(no_period)
    assert report.period is None and report.cost_window is None
    # A run ending right after detection has no measurable window.
    short = _base()
    short.record(10.0, "crash", 0)
    short.record(13.0, "fd", 1, channel="fd",
                 suspected=frozenset({0}), trusted=1)
    short.record(14.0, "fd", 2, channel="fd",
                 suspected=frozenset({0}), trusted=1)
    report = qos_report(short, period=5.0)
    assert report.cost_window is None
    assert report.bound_ok is None


def test_format_renders_the_headline_numbers():
    report = _with_cost(sends_per_period=4)
    text = report.format()
    assert "detection time T_D   : p0: 4.000" in text
    assert "leader stabilization : t=14.000 (leader p1)" in text
    assert "fdp" in text and "4.00 msgs/period" in text
    assert "[2(n-1) bound = 4: OK]" in text
