"""Tests for the ASCII timeline renderers."""

from repro.analysis import leader_timeline, round_timeline, suspicion_timeline
from repro.sim import Trace

S = frozenset


def make_trace():
    trace = Trace()
    for pid in (0, 1, 2):
        trace.record(0.0, "fd", pid, channel="fd",
                     suspected=S(()), trusted=pid)  # disagree initially
    for pid in (0, 1, 2):
        trace.record(50.0, "fd", pid, channel="fd",
                     suspected=S({2}), trusted=0)  # converge on 0, suspect 2
    trace.record(40.0, "crash", 2)
    trace.record(100.0, "tick", 0)  # extend horizon
    return trace


class TestLeaderTimeline:
    def test_shows_convergence(self):
        out = leader_timeline(make_trace(), width=10)
        lines = out.splitlines()
        assert lines[1].startswith("p0 ")
        # First half of p0's row shows self-trust (0), stays 0.
        assert "0" in lines[1]
        # p1 trusted itself (1) early, 0 late.
        row1 = lines[2].split("|")[1]
        assert row1[0] == "1" and row1[-1] == "0"

    def test_crash_marker(self):
        out = leader_timeline(make_trace(), width=10)
        row2 = out.splitlines()[3].split("|")[1]
        assert row2.endswith("xxxxxx")  # crashed at 40 of 100 → last 6 cols

    def test_empty_trace(self):
        assert "no detector output" in leader_timeline(Trace())


class TestSuspicionTimeline:
    def test_suspicion_appears_after_crash(self):
        out = suspicion_timeline(make_trace(), target=2, width=10)
        assert "p2 crashes at t=40" in out.splitlines()[0]
        row0 = out.splitlines()[1].split("|")[1]
        assert row0[0] == "." and row0[-1] == "#"

    def test_target_row_excluded(self):
        out = suspicion_timeline(make_trace(), target=2, width=10)
        assert not any(line.startswith("p2 ") for line in out.splitlines())


class TestRoundTimeline:
    def make_consensus_trace(self):
        trace = Trace()
        for pid in (0, 1):
            trace.record(1.0, "round", pid, algo="x", round=1)
            trace.record(30.0, "round", pid, algo="x", round=2)
        trace.record(60.0, "decide", 0, algo="x", value="v", round=2)
        trace.record(100.0, "tick", 0)
        return trace

    def test_rounds_and_decision(self):
        out = round_timeline(self.make_consensus_trace(), "x", width=10)
        row0 = out.splitlines()[1].split("|")[1]
        assert row0[0] == "1"
        assert row0[-1] == "D"
        row1 = out.splitlines()[2].split("|")[1]
        assert row1[-1] == "2"  # p1 never decided

    def test_unknown_algo(self):
        assert "no rounds traced" in round_timeline(Trace(), "nope")


class TestOnRealRun:
    def test_renders_real_world_run(self):
        from repro.workloads import nice_run

        run = nice_run("ec", n=4, seed=0).run(until=300.0)
        out = leader_timeline(run.world.trace, width=40)
        assert out.count("\n") == 4  # header + 4 process rows
        out2 = round_timeline(run.world.trace, "ec", width=40)
        assert "D" in out2
