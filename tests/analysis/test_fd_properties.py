"""Unit tests for the FD property checkers on synthetic histories."""

import pytest

from repro.analysis import (
    build_histories,
    check_eventual_strong_accuracy,
    check_eventual_weak_accuracy,
    check_omega,
    check_strong_completeness,
    check_trusted_not_suspected,
    check_weak_completeness,
    crash_times,
)
from repro.errors import PropertyViolation
from repro.fd import EVENTUALLY_PERFECT
from repro.analysis import check_fd_class, require_fd_class
from repro.sim import Trace

S = frozenset


def hist(*records):
    """Build a single-process history from (time, suspected, trusted)."""
    return [(t, S(susp), trusted) for t, susp, trusted in records]


CORRECT = S({0, 1})
END = 100.0


class TestStrongCompleteness:
    def test_satisfied(self):
        histories = {
            0: hist((0, [], None), (15, [2], None)),
            1: hist((0, [], None), (12, [2], None)),
        }
        result = check_strong_completeness(histories, {2: 10.0}, CORRECT, END)
        assert result.ok
        assert result.stabilized_at == 15.0

    def test_vacuous_without_crashes(self):
        assert check_strong_completeness({}, {}, CORRECT, END).ok

    def test_violated_when_one_process_never_suspects(self):
        histories = {
            0: hist((0, [], None), (15, [2], None)),
            1: hist((0, [], None)),  # never suspects 2
        }
        result = check_strong_completeness(histories, {2: 10.0}, CORRECT, END)
        assert not result.ok

    def test_late_stabilization_fails_margin(self):
        histories = {
            0: hist((0, [], None), (95, [2], None)),
            1: hist((0, [], None), (95, [2], None)),
        }
        result = check_strong_completeness(histories, {2: 10.0}, CORRECT, END)
        assert not result.ok  # 95 > 100 * 0.9

    def test_unsuspecting_blip_moves_stabilization(self):
        histories = {
            0: hist((0, [], None), (15, [2], None), (40, [], None),
                    (50, [2], None)),
            1: hist((0, [2], None)),
        }
        result = check_strong_completeness(histories, {2: 10.0}, CORRECT, END)
        assert result.ok
        assert result.stabilized_at == 50.0


class TestWeakCompleteness:
    def test_single_witness_suffices(self):
        histories = {
            0: hist((0, [], None), (15, [2], None)),
            1: hist((0, [], None)),  # never suspects — fine for weak
        }
        result = check_weak_completeness(histories, {2: 10.0}, CORRECT, END)
        assert result.ok
        assert result.witness == 0

    def test_violated_when_nobody_suspects(self):
        histories = {0: hist((0, [], None)), 1: hist((0, [], None))}
        result = check_weak_completeness(histories, {2: 10.0}, CORRECT, END)
        assert not result.ok


class TestAccuracy:
    def test_strong_accuracy_ok(self):
        histories = {
            0: hist((0, [1], None), (20, [], None)),
            1: hist((0, [], None)),
        }
        result = check_eventual_strong_accuracy(histories, CORRECT, END)
        assert result.ok
        assert result.stabilized_at == 20.0

    def test_strong_accuracy_violated_by_permanent_false_suspicion(self):
        histories = {
            0: hist((0, [1], None), (90, [1], None)),
            1: hist((0, [], None)),
        }
        result = check_eventual_strong_accuracy(histories, CORRECT, END)
        assert not result.ok

    def test_weak_accuracy_needs_only_one_clean_process(self):
        histories = {
            0: hist((0, [1], None), (90, [1], None)),  # 1 suspected forever
            1: hist((0, [], None)),
        }
        # 0 is never suspected by anyone: weak accuracy holds with witness 0.
        result = check_eventual_weak_accuracy(histories, CORRECT, END)
        assert result.ok
        assert result.witness == 0

    def test_weak_accuracy_violated_when_everyone_suspected(self):
        histories = {
            0: hist((90, [1], None)),
            1: hist((90, [0], None)),
        }
        result = check_eventual_weak_accuracy(histories, CORRECT, END)
        assert not result.ok


class TestOmegaAndConsistency:
    def test_omega_ok(self):
        histories = {
            0: hist((0, [], 1), (10, [], 0)),
            1: hist((0, [], 0)),
        }
        result = check_omega(histories, CORRECT, END)
        assert result.ok
        assert result.witness == 0
        assert result.stabilized_at == 10.0

    def test_omega_violated_by_disagreement(self):
        histories = {
            0: hist((95, [], 0)),
            1: hist((95, [], 1)),
        }
        assert not check_omega(histories, CORRECT, END).ok

    def test_omega_requires_correct_leader(self):
        # Both trust 2 forever, but 2 is not in the correct set.
        histories = {
            0: hist((0, [], 2)),
            1: hist((0, [], 2)),
        }
        assert not check_omega(histories, CORRECT, END).ok

    def test_trusted_not_suspected(self):
        histories = {
            0: hist((0, [1], 1), (30, [], 1)),
            1: hist((0, [], 1)),
        }
        result = check_trusted_not_suspected(histories, CORRECT, END)
        assert result.ok
        assert result.stabilized_at == 30.0

    def test_trusted_suspected_forever_fails(self):
        histories = {
            0: hist((95, [1], 1)),
            1: hist((0, [], 1)),
        }
        assert not check_trusted_not_suspected(histories, CORRECT, END).ok


class TestTraceIntegration:
    def make_trace(self):
        trace = Trace()
        trace.record(5.0, "crash", 2)
        for pid in (0, 1):
            trace.record(0.0, "fd", pid, channel="fd",
                         suspected=S(()), trusted=None)
            trace.record(10.0, "fd", pid, channel="fd",
                         suspected=S({2}), trusted=None)
        trace.record(99.0, "heartbeat", 0)  # push end_time out
        return trace

    def test_build_histories_filters_channel(self):
        trace = self.make_trace()
        trace.record(1.0, "fd", 0, channel="other",
                     suspected=S({1}), trusted=None)
        histories = build_histories(trace, channel="fd")
        assert all(S({1}) != susp for _, susp, _ in histories[0])

    def test_crash_times(self):
        assert crash_times(self.make_trace()) == {2: 5.0}

    def test_check_fd_class_dp(self):
        results = check_fd_class(
            self.make_trace(), EVENTUALLY_PERFECT, CORRECT
        )
        assert set(results) == {"completeness", "accuracy"}
        assert all(results.values())

    def test_require_fd_class_raises_on_violation(self):
        trace = Trace()
        trace.record(5.0, "crash", 2)
        for pid in (0, 1):
            trace.record(0.0, "fd", pid, channel="fd",
                         suspected=S(()), trusted=None)
        trace.record(99.0, "x", 0)
        with pytest.raises(PropertyViolation):
            require_fd_class(trace, EVENTUALLY_PERFECT, CORRECT)
