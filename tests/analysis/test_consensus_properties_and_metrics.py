"""Unit tests for consensus property checkers, metrics, and stats helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    Summary,
    channel_message_count,
    check_consensus,
    extract_outcome,
    geometric_mean,
    max_phases_per_round,
    mean_messages_per_round,
    messages_per_round,
    phases_per_round,
    require_consensus,
    round_at,
    rounds_after,
    steady_state_message_rate,
    summarize,
)
from repro.errors import PropertyViolation
from repro.sim import Trace

S = frozenset


def consensus_trace():
    trace = Trace()
    for pid in range(3):
        trace.record(0.0, "propose", pid, algo="x", value=pid)
    for pid in range(3):
        trace.record(1.0, "round", pid, algo="x", round=1)
        trace.record(1.5, "phase", pid, algo="x", round=1, phase=0)
        trace.record(2.0, "phase", pid, algo="x", round=1, phase=1)
    trace.record(3.0, "phase", 0, algo="x", round=1, phase=2)
    for pid in range(3):
        trace.record(9.0, "decide", pid, algo="x", value=1, round=1)
    return trace


class TestConsensusProperties:
    def test_all_properties_hold(self):
        outcome = extract_outcome(consensus_trace(), "x")
        results = check_consensus(outcome, S({0, 1, 2}))
        assert all(results.values())

    def test_algo_autodetected(self):
        outcome = extract_outcome(consensus_trace())
        assert outcome.algo == "x"
        assert len(outcome.decisions) == 3

    def test_termination_violated(self):
        trace = consensus_trace()
        outcome = extract_outcome(trace, "x")
        del outcome.decisions[2]
        results = check_consensus(outcome, S({0, 1, 2}))
        assert not results["termination"]

    def test_agreement_violated(self):
        outcome = extract_outcome(consensus_trace(), "x")
        outcome.decisions[1] = 999
        assert not check_consensus(outcome, S({0, 1, 2}))["uniform-agreement"]

    def test_uniform_agreement_counts_faulty_processes(self):
        # A crashed process decided differently: uniform agreement broken
        # even though it is not in the correct set.
        outcome = extract_outcome(consensus_trace(), "x")
        outcome.decisions[2] = 999
        assert not check_consensus(outcome, S({0, 1}))["uniform-agreement"]

    def test_validity_violated(self):
        outcome = extract_outcome(consensus_trace(), "x")
        for pid in outcome.decisions:
            outcome.decisions[pid] = "not-proposed"
        assert not check_consensus(outcome, S({0, 1, 2}))["validity"]

    def test_integrity_violated_by_double_decide(self):
        trace = consensus_trace()
        trace.record(10.0, "decide", 0, algo="x", value=1, round=2)
        outcome = extract_outcome(trace, "x")
        assert not check_consensus(outcome, S({0, 1, 2}))["uniform-integrity"]

    def test_require_raises(self):
        outcome = extract_outcome(consensus_trace(), "x")
        outcome.decisions[1] = 999
        with pytest.raises(PropertyViolation):
            require_consensus(outcome, S({0, 1, 2}))

    def test_unhashable_values_supported(self):
        trace = Trace()
        trace.record(0.0, "propose", 0, algo="x", value={"k": 1})
        trace.record(1.0, "decide", 0, algo="x", value={"k": 1}, round=1)
        outcome = extract_outcome(trace, "x")
        assert check_consensus(outcome, S({0}))["uniform-agreement"]
        assert check_consensus(outcome, S({0}))["validity"]


class TestMetrics:
    def make_trace(self):
        trace = Trace()
        for i in range(6):
            trace.record(float(i), "send", 0, channel="consensus",
                         loopback=(i == 0), round=1 + i // 4, tag="est")
        trace.record(10.0, "send", 0, channel="rb", loopback=False)
        trace.record(11.0, "send", 0, channel="consensus", loopback=False)
        return trace

    def test_channel_message_count(self):
        trace = self.make_trace()
        assert channel_message_count(trace, "consensus") == 6
        assert channel_message_count(trace, "consensus",
                                     include_loopback=True) == 7
        assert channel_message_count(trace, "rb") == 1
        assert channel_message_count(trace, "consensus", after=3.0,
                                     before=6.0) == 3

    def test_messages_per_round_excludes_loopback_and_unrounded(self):
        per_round = messages_per_round(self.make_trace())
        assert per_round == {1: 3, 2: 2}

    def test_mean_messages_per_round(self):
        assert mean_messages_per_round(self.make_trace()) == 2.5

    def test_phase_metrics(self):
        trace = consensus_trace()
        assert phases_per_round(trace, "x") == {1: {0, 1, 2}}
        assert max_phases_per_round(trace, "x") == 3
        assert max_phases_per_round(trace, "nope") == 0

    def test_round_at(self):
        trace = consensus_trace()
        assert round_at(trace, 0, 0.5, "x") == 0
        assert round_at(trace, 0, 2.0, "x") == 1

    def test_rounds_after(self):
        trace = consensus_trace()
        extra = rounds_after(trace, 1.2, "x")
        assert extra == {0: 1, 1: 1, 2: 1}

    def test_steady_state_rate(self):
        trace = self.make_trace()
        rate = steady_state_message_rate(
            trace, ("consensus",), (0.0, 10.0), period=5.0
        )
        assert rate == pytest.approx((5) / 2.0)


class TestStats:
    def test_summarize_basics(self):
        s = summarize([1, 2, 3, 4])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1 and s.maximum == 4

    def test_summarize_empty(self):
        s = summarize([])
        assert s.n == 0
        assert math.isnan(s.mean)

    def test_odd_median(self):
        assert summarize([3, 1, 2]).median == 2

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert math.isnan(geometric_mean([]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_summary_invariants(self, xs):
        import math

        import numpy as np
        s = summarize(xs)
        assert s.minimum <= s.median <= s.maximum
        # Allow 1-ulp float rounding around the extremes.
        lo = math.nextafter(s.minimum, -math.inf)
        hi = math.nextafter(s.maximum, math.inf)
        assert lo <= s.mean <= hi
        assert s.mean == pytest.approx(float(np.mean(xs)), abs=1e-6)
        assert s.std == pytest.approx(float(np.std(xs)), abs=1e-6)
