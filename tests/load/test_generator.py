"""Load generator units plus one small real run against a loopback
service cluster."""

import asyncio

import pytest

from repro.cluster import LocalCluster
from repro.errors import ConfigurationError
from repro.load import LoadGenerator, LoadReport, percentile
from repro.svc import start_service

PERIOD = 0.03


# ------------------------------------------------------------------ percentile
def test_percentile_nearest_rank():
    samples = [0.5, 0.1, 0.3, 0.2, 0.4]
    assert percentile(samples, 0.5) == 0.3
    assert percentile(samples, 0.0) == 0.1
    assert percentile(samples, 1.0) == 0.5
    assert percentile(samples, 0.99) == 0.5
    assert percentile([7.0], 0.5) == 7.0


def test_percentile_empty_and_bad_quantile():
    assert percentile([], 0.5) is None
    with pytest.raises(ConfigurationError):
        percentile([1.0], 1.5)
    with pytest.raises(ConfigurationError):
        percentile([1.0], -0.1)


# ---------------------------------------------------------------------- report
def test_report_summary_math():
    report = LoadReport(mode="closed", clients=4, duration=2.0,
                        target_rate=None)
    report.attempted = 12
    report.acked = 10
    report.errors = 2
    report.latencies = [0.010 * (i + 1) for i in range(10)]
    summary = report.summary()
    assert summary["acked_per_s"] == 5.0
    assert summary["p50_ms"] == 50.0
    assert summary["p99_ms"] == 100.0
    assert "acked=10" in report.render()


def test_report_with_no_acks_has_none_latencies():
    report = LoadReport(mode="open", clients=1, duration=1.0, target_rate=5.0)
    summary = report.summary()
    assert summary["p50_ms"] is None
    assert report.achieved_rate == 0.0


# ------------------------------------------------------------------ validation
def test_constructor_validation():
    addrs = [("127.0.0.1", 1)]
    with pytest.raises(ConfigurationError):
        LoadGenerator(addrs, mode="bursty")
    with pytest.raises(ConfigurationError):
        LoadGenerator(addrs, clients=0)
    with pytest.raises(ConfigurationError):
        LoadGenerator(addrs, mode="open")  # no rate
    with pytest.raises(ConfigurationError):
        LoadGenerator(addrs, mode="open", rate=0)


# ------------------------------------------------------------------- real runs
def load_test(make_generator):
    """Boot a loopback rsm service, run one generator against it."""

    async def run():
        cluster = LocalCluster(3, transport="loopback")
        stacks = cluster.deploy_standard_stack(stack="rsm", period=PERIOD)
        await cluster.start()
        fronts = await start_service(cluster, stacks)
        try:
            generator = make_generator(
                [front.local_address for front in fronts]
            )
            return await generator.run(), generator
        finally:
            for front in fronts:
                await front.close()
            await cluster.stop()

    return asyncio.run(run())


def test_closed_loop_run_acks_and_records_latency():
    report, generator = load_test(
        lambda addrs: LoadGenerator(
            addrs, clients=5, mode="closed", duration=1.0,
            request_timeout=10.0, seed=1,
        )
    )
    assert report.acked > 0
    assert report.errors == 0
    assert report.attempted >= report.acked
    assert len(report.latencies) == report.acked
    assert report.duration >= 1.0
    assert report.latency(0.5) > 0
    # Every client owns one key; acked writes name (key, seq, value).
    for client_id, (key, seq, value) in report.last_acked_put.items():
        assert client_id.startswith("load-")
        assert key.startswith("k")
        assert seq >= 0 and value >= 0
    # The shared registry histogram saw the same acks.
    series = generator.metrics.snapshot()["svc_request_latency_seconds"]
    observed = sum(entry["value"]["count"] for entry in series)
    assert observed == report.acked


def test_open_loop_sheds_when_demand_exceeds_the_pool():
    # 2 clients at 200/s against a ~1-command-per-slot service: most
    # ticks find no free client and must be counted as shed, not queued.
    report, _ = load_test(
        lambda addrs: LoadGenerator(
            addrs, clients=2, mode="open", rate=200.0, duration=1.0,
            request_timeout=10.0, seed=1,
        )
    )
    assert report.acked > 0
    assert report.shed > 0
    assert report.attempted + report.shed >= 100
