"""Randomized end-to-end battery: every algorithm under random adversity.

Each case draws a random system size, crash pattern, stabilization time and
network from the seed, runs consensus, and verifies all four Uniform
Consensus properties.  This is the workhorse correctness test — bugs in
round handling, quorum waits, or late-coordinator bookkeeping show up here
as agreement or termination violations.
"""

import random

import pytest

from repro.analysis import extract_outcome, require_consensus
from repro.sim.failures import CrashSchedule, CrashEvent
from repro.workloads import consensus_run, wan_link

pytestmark = pytest.mark.slow  # randomized battery; skipped by -m "not slow"


def random_case(algo, seed):
    rng = random.Random(seed * 1000 + hash(algo) % 1000)
    n = rng.choice([3, 4, 5, 6, 7])
    max_crashes = (n - 1) // 2
    crash_count = rng.randint(0, max_crashes)
    victims = rng.sample(range(n), crash_count)
    crashes = CrashSchedule(
        CrashEvent(pid, rng.uniform(0.0, 200.0)) for pid in victims
    )
    stabilize = rng.choice([0.0, 60.0, 150.0])
    return consensus_run(
        algo,
        n=n,
        seed=seed,
        stabilize_time=stabilize,
        pre_behavior="erratic" if stabilize else "ideal",
        crashes=crashes,
        link=wan_link(),
    )


ALGOS = ["ec", "ct", "mr", "paxos"]


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("seed", range(6))
def test_random_adversity(algo, seed):
    run = random_case(algo, seed).run(until=6000.0)
    outcome = extract_outcome(run.world.trace, algo)
    require_consensus(outcome, run.world.correct_pids)
    assert run.decided, (
        f"{algo} seed={seed}: correct processes failed to decide"
    )


@pytest.mark.parametrize("algo", ALGOS)
def test_thorough_battery(algo, thorough):
    """Extended sweep, enabled with ``pytest --thorough``."""
    if not thorough:
        pytest.skip("pass --thorough for the extended battery")
    for seed in range(6, 40):
        run = random_case(algo, seed).run(until=8000.0)
        outcome = extract_outcome(run.world.trace, algo)
        require_consensus(outcome, run.world.correct_pids)
        assert run.decided, f"{algo} seed={seed}"
