"""Multi-process integration: real OS processes, real sockets, kill -9.

These are the runs the ISSUE's acceptance criteria describe: a 3-node
:class:`~repro.proc.ProcessCluster` over loopback UDP, the leader killed
with SIGKILL mid-run, traces shipped as per-node JSONL and merged
postmortem — and the same scripted scenario driven through the unified
:class:`~repro.cluster.ClusterAPI` against both cluster types.
"""

import asyncio

import pytest

from repro.analysis.qos import qos_report
from repro.cluster import ClusterAPI, LocalCluster, ProcessCluster, verdicts_ok
from repro.obs.reader import as_trace
from repro.proc import ProcessCluster as ProcFromProc

pytestmark = pytest.mark.slow

#: Wall-clock scenario shape shared by both implementations: the ring
#: stack elects pid 0 first, we SIGKILL it at CRASH_AT, survivors must
#: re-elect and still decide.
PERIOD = 0.05
DURATION = 6.0
CRASH_AT = 2.5
PROPOSE_AFTER = 3.5  # after the crash: survivors propose


async def drive(cluster):
    """One harness, any ClusterAPI implementation (ISSUE acceptance)."""
    assert isinstance(cluster, ClusterAPI)
    cluster.crash(0, at=CRASH_AT)
    await cluster.start()
    assert await cluster.wait_quiescent(timeout=DURATION + 15.0)
    await cluster.stop()
    return cluster.traces(), cluster.verdicts()


def check_leader_moved(cluster, trace, verdicts):
    """The paper's bottom line on this failure pattern."""
    assert cluster.correct_pids == frozenset({1, 2})
    assert verdicts_ok(verdicts), verdicts
    # The merged trace carries the failure pattern itself...
    crashes = [ev for ev in trace.events if ev.kind == "crash"]
    assert [ev.pid for ev in crashes] == [0]
    # ...and Property 1 stabilized on a *new* leader: a correct process,
    # necessarily not the dead initial leader p0.
    omega = verdicts["fd.omega"]
    assert omega.ok
    assert omega.witness in cluster.correct_pids
    assert omega.witness != 0


def test_kill9_leader_three_node_udp_process_cluster(tmp_path):
    cluster = ProcessCluster(
        3, transport="udp", stack="ring", period=PERIOD,
        duration=DURATION, propose_after=PROPOSE_AFTER, seed=7,
        workdir=tmp_path,
    )
    trace, verdicts = asyncio.run(drive(cluster))
    check_leader_moved(cluster, trace, verdicts)
    # Crash-model bookkeeping: the victim died of SIGKILL (-9), the
    # survivors ran to the end of the scenario and exited cleanly.
    assert cluster.exit_statuses[0] == -9
    assert cluster.exit_statuses[1] == 0
    assert cluster.exit_statuses[2] == 0
    # Every node shipped a trace file (the victim's merely stops early),
    # and the offline merger accepted all three.
    assert all(path.exists() for path in cluster.trace_files)
    assert len(cluster.merge_report().files) == 3
    # save_merged() ships the analysis-ready combined file: unlike the
    # per-node streams it carries the synthetic crash marker (a SIGKILL
    # victim cannot write its own), so `repro trace qos` on the file
    # sees the full failure pattern — p0's detection, stabilization on
    # a survivor, and the 2(n-1) transformation bound.
    merged_path = cluster.save_merged(tmp_path / "merged.jsonl")
    shipped = as_trace(merged_path)
    assert [ev.pid for ev in shipped.events if ev.kind == "crash"] == [0]
    qos = qos_report(shipped, channel="fd", period=PERIOD, n=3)
    assert qos.detection.get(0) is not None
    assert qos.unresolved_mistakes == 0
    assert qos.stable_leader in {1, 2}
    assert qos.bound_ok is True


def test_same_harness_drives_local_cluster(tmp_path):
    cluster = LocalCluster(
        3, transport="udp", duration=DURATION, trace_out=tmp_path / "traces",
    )
    cluster.deploy_standard_stack(
        stack="ring", period=PERIOD, propose_after=PROPOSE_AFTER,
    )
    trace, verdicts = asyncio.run(drive(cluster))
    check_leader_moved(cluster, trace, verdicts)


def test_process_cluster_is_one_class():
    """repro.cluster re-exports the launcher, not a copy."""
    assert ProcessCluster is ProcFromProc
