"""Negative-space tests: what breaks when the paper's assumptions do.

The paper's results are conditional — f < n/2, reliable links, partial
synchrony on specific links.  Each test here removes one assumption and
shows the corresponding guarantee fail *while safety still holds*, which
is exactly the boundary the theory draws.
"""

import pytest

from repro.analysis import check_consensus, extract_outcome
from repro.broadcast import ReliableBroadcast
from repro.consensus import ECConsensus, propose_all
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import (
    FixedDelay,
    NetworkController,
    ReliableLink,
    World,
    crash_at,
)


def build(n, seed=0):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    protos = []
    for pid in world.pids:
        fd = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal")))
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, ECConsensus(fd, rb)))
    world.start()
    propose_all(protos)
    return world, protos


class TestMajorityAssumption:
    def test_half_crashes_block_termination_but_not_safety(self):
        """With f = n/2 (violating f < n/2), no majority survives: the
        algorithm must *not* decide — blocking is the correct behaviour
        (deciding could violate uniform agreement with a healed majority).
        """
        world, protos = build(n=4)
        crash_at((2, 0.5), (3, 0.5)).apply(world)  # 2 of 4: f = n/2
        world.run(until=2000.0)
        live = [p for p in protos if not world.process(p.pid).crashed]
        assert all(not p.decided for p in live)
        # Safety intact: nothing decided at all.
        outcome = extract_outcome(world.trace, "ec")
        results = check_consensus(outcome, world.correct_pids)
        assert results["uniform-agreement"] and results["validity"]

    def test_exact_majority_survives_and_decides(self):
        """One fewer crash — a bare majority — and termination returns."""
        world, protos = build(n=5, seed=1)
        crash_at((3, 0.5), (4, 0.5)).apply(world)  # 2 of 5: f < n/2
        world.run(until=2000.0)
        live = [p for p in protos if not world.process(p.pid).crashed]
        assert all(p.decided for p in live)


class TestReliableLinksAssumption:
    def test_permanent_partition_blocks_both_sides_minority(self):
        """A permanent partition leaves no side with a majority: nobody
        decides, nobody diverges."""
        world, protos = build(n=4, seed=2)
        ctl = NetworkController(world)
        ctl.partition([0, 1], [2, 3])
        world.run(until=1500.0)
        assert all(not p.decided for p in protos)
        outcome = extract_outcome(world.trace, "ec")
        assert check_consensus(outcome, world.correct_pids)["uniform-agreement"]

    def test_majority_side_decides_minority_catches_up_after_heal(self):
        """Needs a *message-passing* detector: a crash oracle never suspects
        merely-partitioned peers, so its coordinator would wait for their
        replies forever.  A heartbeat detector suspects the other side of
        the cut, letting the majority proceed — detector inaccuracy is what
        buys availability here."""
        from repro.fd import HeartbeatEventuallyPerfect
        from repro.transform import PToC

        world = World(n=5, seed=3,
                      default_link=ReliableLink(FixedDelay(1.0)))
        protos = []
        for pid in world.pids:
            hb = world.attach(pid, HeartbeatEventuallyPerfect(
                initial_timeout=8.0, channel="fd.hb"))
            fd = world.attach(pid, PToC(hb))
            rb = world.attach(pid, ReliableBroadcast(
                channel="consensus.rb", retransmit_period=10.0))
            protos.append(world.attach(pid, ECConsensus(
                fd, rb, stubborn_period=10.0)))
        ctl = NetworkController(world)
        world.start()
        propose_all(protos)
        ctl.partition_between(0.5, 300.0, [3, 4])
        world.run(until=250.0)
        majority = [protos[i] for i in (0, 1, 2)]
        minority = [protos[i] for i in (3, 4)]
        assert all(p.decided for p in majority)
        assert all(not p.decided for p in minority)
        world.run(until=2500.0)
        assert all(p.decided for p in protos)
        decisions = {p.decision for p in protos}
        assert len(decisions) == 1


class TestDetectorAssumption:
    def test_never_stabilizing_detector_blocks_termination(self):
        """Without the ◇C eventual properties (leader election never
        settles), the algorithm may never decide — but never errs."""
        world = World(n=5, seed=4,
                      default_link=ReliableLink(FixedDelay(1.0)))
        protos = []
        for pid in world.pids:
            fd = world.attach(pid, OracleFailureDetector(
                EVENTUALLY_CONSISTENT,
                OracleConfig(pre_behavior="suspect-all",
                             stabilize_time=10_000_000.0)))
            rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
            protos.append(world.attach(pid, ECConsensus(fd, rb)))
        world.start()
        propose_all(protos)
        world.run(until=800.0)
        # Everyone self-coordinates, nobody ever acks: no decision...
        assert all(not p.decided for p in protos)
        # ...and no divergence.
        outcome = extract_outcome(world.trace, "ec")
        assert check_consensus(outcome, world.correct_pids)["uniform-agreement"]
