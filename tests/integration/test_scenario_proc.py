"""The declarative nemesis against real OS processes: a partition armed
over per-node fault-control messages, a SIGSTOP stall, and the same
``run_scenario`` call that drives the virtual substrate — the CI smoke
scenario, as a test."""

import asyncio
from collections import Counter

import pytest

from repro.analysis.qos import qos_report
from repro.cluster import ProcessCluster
from repro.scenario import Scenario, run_scenario

pytestmark = pytest.mark.slow

PERIOD = 0.05
TIMEOUT = 2.4 * PERIOD
DURATION = 6.0

#: partition + heal, then a SIGSTOP window longer than the detection
#: timeout — the ISSUE's acceptance schedule.
NEMESIS = Scenario(
    name="proc-smoke", n=3, period=PERIOD, duration=DURATION,
    propose_after=4.0,
    events=[
        {"t": 0.6, "op": "partition", "groups": [[2]]},
        {"t": 1.4, "op": "heal"},
        {"t": 2.0, "op": "stall", "pid": 1},
        {"t": 2.0 + 4 * TIMEOUT, "op": "resume", "pid": 1},
    ],
)


def test_scenario_against_a_real_process_cluster(tmp_path):
    cluster = ProcessCluster(
        3, transport="udp", stack="ring", period=PERIOD,
        duration=DURATION, propose_after=NEMESIS.propose_after, seed=7,
        workdir=tmp_path,
    )
    result = asyncio.run(
        run_scenario(cluster, NEMESIS, quiesce_timeout=DURATION + 15.0)
    )
    assert result["quiescent"]
    assert result["ok"], result["verdicts"]
    # Every fault command reached its node (the launcher records failures).
    assert cluster.control_errors == []
    # Nobody was killed: the stalled node was resumed, everyone exited 0.
    assert all(status == 0 for status in cluster.exit_statuses.values())
    # The merged trace narrates the schedule exactly once per event...
    trace = cluster.traces()
    kinds = Counter(
        ev.kind for ev in trace.events if ev.kind.startswith("scenario.")
    )
    assert kinds == Counter({
        "scenario.run": 1, "scenario.partition": 1, "scenario.heal": 1,
        "scenario.stall": 1, "scenario.resume": 1,
    })
    # ...and the SIGSTOP window shows up as wrongful suspicion of the
    # frozen-but-correct node, counted by `repro trace qos`.
    report = qos_report(trace, period=PERIOD, n=3)
    assert any(m.suspect == 1 for m in report.mistakes)
    assert report.leader_stabilized_at is not None
