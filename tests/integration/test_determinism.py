"""Whole-system determinism: same seed -> bit-identical runs."""

from repro.analysis import extract_outcome
from repro.workloads import stabilizing_run


def trace_fingerprint(trace):
    return [(ev.time, ev.kind, ev.pid, sorted(ev.data.items(),
                                              key=lambda kv: kv[0]))
            for ev in trace.events
            if ev.kind in ("send", "crash", "decide", "round")]


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        fps = []
        for _ in range(2):
            run = stabilizing_run("ec", n=5, seed=123,
                                  stabilize_time=80.0).run(until=1500.0)
            fps.append(trace_fingerprint(run.world.trace))
        assert fps[0] == fps[1]

    def test_different_seeds_differ(self):
        a = stabilizing_run("ec", n=5, seed=1,
                            stabilize_time=80.0).run(until=1500.0)
        b = stabilizing_run("ec", n=5, seed=2,
                            stabilize_time=80.0).run(until=1500.0)
        assert trace_fingerprint(a.world.trace) != trace_fingerprint(b.world.trace)

    def test_decisions_reproducible(self):
        decisions = set()
        for _ in range(3):
            run = stabilizing_run("mr", n=5, seed=77,
                                  stabilize_time=60.0).run(until=1500.0)
            outcome = extract_outcome(run.world.trace, "mr")
            decisions.add(tuple(sorted(outcome.decisions.items())))
        assert len(decisions) == 1
