"""Property-based adversarial safety testing.

Hypothesis drives the adversary: system size, proposal values, crash
pattern, detector stabilization, link delays and run length are all drawn
by the framework, which will shrink any counterexample to a minimal one.

Safety (uniform agreement, validity, integrity) must hold on **every**
prefix of every run — even those too short to decide, with detectors that
never stabilize, or with the maximum tolerable number of crashes.
Termination is only asserted when the drawn run actually gives the
algorithm what it needs (stability + enough time).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import check_consensus, extract_outcome
from repro.broadcast import ReliableBroadcast
from repro.consensus import ALGORITHMS, propose_all
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import ReliableLink, UniformDelay, World
from repro.sim.failures import CrashEvent, CrashSchedule
from repro.workloads import DEFAULT_FD_CLASS

pytestmark = pytest.mark.slow  # randomized battery; skipped by -m "not slow"

adversary = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=3, max_value=6),
        "seed": st.integers(min_value=0, max_value=10_000),
        "stabilize": st.sampled_from([0.0, 50.0, 10_000.0]),  # last: never
        "max_delay": st.floats(min_value=0.5, max_value=20.0),
        "horizon": st.floats(min_value=10.0, max_value=1500.0),
        "crash_fraction": st.floats(min_value=0.0, max_value=1.0),
        "crash_window": st.floats(min_value=1.0, max_value=300.0),
    }
)


def build_run(algo, cfg):
    n = cfg["n"]
    world = World(
        n=n,
        seed=cfg["seed"],
        default_link=ReliableLink(UniformDelay(0.1, cfg["max_delay"])),
    )
    fd_class = DEFAULT_FD_CLASS[algo]
    oracle = OracleConfig(
        stabilize_time=cfg["stabilize"],
        pre_behavior="erratic",
    )
    protos = []
    for pid in world.pids:
        fd = world.attach(pid, OracleFailureDetector(fd_class, oracle))
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, ALGORITHMS[algo](fd, rb)))
    world.start()
    propose_all(protos, values=[f"v{pid}" for pid in world.pids])
    # Up to floor((n-1)/2) crashes at drawn times.
    max_crashes = (n - 1) // 2
    count = int(round(cfg["crash_fraction"] * max_crashes))
    victims = [(pid * 2 + 1) % n for pid in range(count)]
    CrashSchedule(
        CrashEvent(pid, cfg["crash_window"] * (i + 1) / (count + 1))
        for i, pid in enumerate(dict.fromkeys(victims))
    ).apply(world)
    return world, protos


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cfg=adversary)
def test_safety_under_arbitrary_adversity(algo, cfg):
    world, protos = build_run(algo, cfg)
    world.run(until=cfg["horizon"], max_events=300_000)
    outcome = extract_outcome(world.trace, algo)
    results = check_consensus(outcome, world.correct_pids)
    # Safety properties hold unconditionally, on every prefix.
    assert results["uniform-agreement"], outcome.decisions
    assert results["validity"], outcome.decisions
    assert results["uniform-integrity"]


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=3, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_termination_when_conditions_met(algo, n, seed):
    """With a fast-stabilizing detector, sane delays, and a long horizon,
    every correct process decides."""
    cfg = {
        "n": n, "seed": seed, "stabilize": 30.0, "max_delay": 2.0,
        "horizon": 5000.0, "crash_fraction": 0.0, "crash_window": 10.0,
    }
    world, protos = build_run(algo, cfg)
    world.run(until=cfg["horizon"])
    outcome = extract_outcome(world.trace, algo)
    results = check_consensus(outcome, world.correct_pids)
    assert all(results.values()), results
    assert all(p.decided for p in protos)
