"""Integration tests pinning the paper's headline analytical claims.

Quick (single-seed) versions of the benchmark experiments — the benchmarks
in ``benchmarks/`` sweep parameters and print the full tables; these tests
lock the *shape* of each claim into the suite so regressions get caught.
"""

import pytest

from repro.analysis import (
    channel_message_count,
    detection_latency,
    max_phases_per_round,
    messages_per_round,
    rounds_after_system,
)
from repro.fd import HeartbeatEventuallyPerfect, RingDetector
from repro.sim import FixedDelay, ReliableLink, World
from repro.workloads import nice_run, theorem3_run

pytestmark = pytest.mark.slow  # randomized battery; skipped by -m "not slow"


class TestSection54PhaseCounts:
    """Phases per round: ◇C 5, CT 4, MR 3."""

    def test_phase_counts(self):
        expected = {"ec": 5, "ct": 4, "mr": 3}
        for algo, phases in expected.items():
            run = nice_run(algo, n=5, seed=0).run(until=300.0)
            assert max_phases_per_round(run.world.trace, algo) == phases, algo


class TestSection54MessageCounts:
    """Messages per round in nice runs: ◇C ≈ 4n, CT ≈ 3n, MR ≈ 3n²."""

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_linear_vs_quadratic(self, n):
        counts = {}
        for algo in ("ec", "ct", "mr"):
            run = nice_run(algo, n=n, seed=1).run(until=400.0)
            counts[algo] = messages_per_round(run.world.trace)[1]
        assert counts["ec"] == 4 * (n - 1)
        assert counts["ct"] == 3 * (n - 1)
        assert counts["mr"] == 3 * n * (n - 1)


class TestTheorem3RoundsAfterStability:
    """◇C decides in the first fresh round; rotating CT needs Θ(n)."""

    def test_ec_constant_ct_linear(self):
        n = 8
        ec = theorem3_run("ec", n=n, leader=n - 2, stabilize_time=200.0)
        ec.run(until=4000.0)
        assert ec.decided
        ec_rounds = rounds_after_system(ec.world.trace, 200.0, "ec")

        ct = theorem3_run("ct", n=n, leader=n - 2, stabilize_time=200.0)
        ct.run(until=6000.0)
        assert ct.decided
        ct_rounds = rounds_after_system(ct.world.trace, 200.0, "ct")

        assert ec_rounds == 1
        # CT must wait for the slandered-free leader's coordinator turn:
        # somewhere between 1 and n rounds, and strictly worse than EC in
        # this adversarial run.
        assert ct_rounds > ec_rounds
        assert ct_rounds <= n + 1


class TestSection4TransformationCost:
    """Periodic ◇P cost: Fig. 2 ≈ 2(n−1) < ring 2n < all-to-all n(n−1)."""

    def test_cost_ordering(self):
        from repro.fd import (
            EVENTUALLY_CONSISTENT,
            OracleConfig,
            OracleFailureDetector,
        )
        from repro.transform import CToPTransformation

        n = 8
        period = 5.0
        window = (200.0, 600.0)

        world = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
        for pid in world.pids:
            src = world.attach(pid, OracleFailureDetector(
                EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal"),
                channel="fd.c"))
            world.attach(pid, CToPTransformation(
                src, send_period=period, alive_period=period, channel="fdp"))
        world.run(until=window[1])
        fig2 = channel_message_count(world.trace, "fdp", after=window[0])

        w_ring = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
        w_ring.attach_all(lambda pid: RingDetector(period=period))
        w_ring.run(until=window[1])
        ring = channel_message_count(w_ring.trace, "fd", after=window[0])

        w_hb = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
        w_hb.attach_all(lambda pid: HeartbeatEventuallyPerfect(period=period))
        w_hb.run(until=window[1])
        hb = channel_message_count(w_hb.trace, "fd", after=window[0])

        assert fig2 < ring < hb
        periods = (window[1] - window[0]) / period
        assert fig2 / periods == pytest.approx(2 * (n - 1), rel=0.1)
        assert ring / periods == pytest.approx(2 * n, rel=0.15)
        assert hb / periods == pytest.approx(n * (n - 1), rel=0.1)


class TestE8DetectionLatency:
    """Fig. 2 transformation detects crashes in O(1) periods; the ring's
    suspicion list needs Θ(n) hops."""

    def test_latency_gap_widens_with_n(self):
        from repro.fd import (
            EVENTUALLY_CONSISTENT,
            OracleConfig,
            OracleFailureDetector,
        )
        from repro.transform import CToPTransformation

        period = 5.0
        gaps = {}
        for n in (6, 12):
            world = World(n=n, seed=1,
                          default_link=ReliableLink(FixedDelay(1.0)))
            for pid in world.pids:
                src = world.attach(pid, OracleFailureDetector(
                    EVENTUALLY_CONSISTENT, OracleConfig(pre_behavior="ideal"),
                    channel="fd.c"))
                world.attach(pid, CToPTransformation(
                    src, send_period=period, alive_period=period,
                    initial_timeout=12.0, channel="fdp"))
            crash_victim = n // 2
            world.schedule_crash(crash_victim, 100.0)
            world.run(until=3000.0)
            lat_fig2 = detection_latency(world.trace, crash_victim, 100.0,
                                         world.correct_pids, channel="fdp")

            w_ring = World(n=n, seed=1,
                           default_link=ReliableLink(FixedDelay(1.0)))
            w_ring.attach_all(
                lambda pid: RingDetector(period=period, initial_timeout=12.0))
            w_ring.schedule_crash(crash_victim, 100.0)
            w_ring.run(until=3000.0)
            lat_ring = detection_latency(w_ring.trace, crash_victim, 100.0,
                                         w_ring.correct_pids, channel="fd")
            assert lat_fig2 is not None and lat_ring is not None
            gaps[n] = (lat_fig2, lat_ring)

        for n, (fig2, ring) in gaps.items():
            assert fig2 < ring, gaps
        # Ring latency grows with n; Fig. 2 latency does not.
        assert gaps[12][1] > gaps[6][1]
        assert gaps[12][0] < gaps[6][1]
