"""Tests for the message-free Section 3 reductions (Ω→◇C and ◇P→◇C)."""

import pytest

from repro.analysis import check_fd_class_on_world
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    OMEGA,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import World
from repro.transform import OmegaToC, PToC


def omega_to_c_world(n=5, seed=0, stabilize=0.0):
    world = World(n=n, seed=seed)
    dets = []
    for pid in world.pids:
        omega = world.attach(
            pid,
            OracleFailureDetector(
                OMEGA,
                OracleConfig(
                    pre_behavior="ideal" if stabilize == 0 else "erratic",
                    stabilize_time=stabilize,
                ),
                channel="fd.omega",
            ),
        )
        dets.append(world.attach(pid, OmegaToC(omega)))
    return world, dets


def p_to_c_world(n=5, seed=0):
    world = World(n=n, seed=seed)
    dets = []
    for pid in world.pids:
        p_det = world.attach(
            pid,
            OracleFailureDetector(
                EVENTUALLY_PERFECT,
                OracleConfig(pre_behavior="ideal"),
                channel="fd.p",
            ),
        )
        dets.append(world.attach(pid, PToC(p_det)))
    return world, dets


class TestOmegaToC:
    def test_complement_suspicion(self):
        world, dets = omega_to_c_world()
        world.run(until=50.0)
        det = dets[2]
        assert det.trusted() == 0
        assert det.suspected() == {1, 3, 4}

    def test_no_messages_exchanged(self):
        world, dets = omega_to_c_world()
        world.run(until=100.0)
        assert world.network.sent_by_channel.get("fd", 0) == 0

    def test_satisfies_ec_class(self):
        world, dets = omega_to_c_world(seed=1, stabilize=60.0)
        world.schedule_crash(0, 100.0)
        world.run(until=600.0)
        results = check_fd_class_on_world(world, EVENTUALLY_CONSISTENT)
        assert all(results.values()), results

    def test_tracks_leader_changes(self):
        world, dets = omega_to_c_world()
        world.schedule_crash(0, 20.0)
        world.run(until=100.0)
        assert dets[1].trusted() == 1
        assert dets[1].suspected() == {0, 2, 3, 4} - {1}


class TestPToC:
    def test_trusted_is_first_non_suspected(self):
        world, dets = p_to_c_world()
        world.schedule_crash(0, 20.0)
        world.schedule_crash(1, 30.0)
        world.run(until=100.0)
        for det in dets:
            if det.pid > 1:
                assert det.trusted() == 2
                assert det.suspected() == {0, 1}

    def test_no_messages_exchanged(self):
        world, dets = p_to_c_world()
        world.run(until=100.0)
        assert world.network.sent_by_channel.get("fd", 0) == 0

    def test_satisfies_ec_class(self):
        world, dets = p_to_c_world(seed=2)
        world.schedule_crash(4, 50.0)
        world.run(until=500.0)
        results = check_fd_class_on_world(world, EVENTUALLY_CONSISTENT)
        assert all(results.values()), results

    def test_keeps_higher_accuracy_than_omega_route(self):
        """◇P → ◇C suspects only actual crashes — the paper's accuracy
        argument for preferring this construction."""
        world, dets = p_to_c_world()
        world.schedule_crash(3, 20.0)
        world.run(until=100.0)
        assert dets[0].suspected() == {3}  # not "everyone but the leader"
