"""The full Section 3 + Section 4 reduction pipeline, composed end to end.

Starting from the *weakest* detector the paper discusses — a ◇W oracle —
we stack every transformation the paper gives:

    ◇W --(gossip, CT)--> ◇S --(counters, [5]/[7])--> ◇C --(Fig. 2)--> ◇P

and verify the final product satisfies ◇P on runs with crashes and
partial synchrony.  Each stage is also checked for its own contract, so a
failure pinpoints the broken link in the chain.
"""

import pytest

from repro.analysis import check_fd_class_on_world
from repro.broadcast import ReliableBroadcast
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay, ReliableLink, World
from repro.transform import CToPTransformation, SToC, WToS


def build_chain(n=5, seed=0):
    """Every process runs the full four-stage detector stack."""
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    stacks = []
    for pid in world.pids:
        w_det = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_WEAK,
            OracleConfig(pre_behavior="ideal"),
            channel="fd.w"))
        s_det = world.attach(pid, WToS(w_det, period=5.0, channel="fd.s"))
        rb = world.attach(pid, ReliableBroadcast(channel="fd.c.rb"))
        c_det = world.attach(pid, SToC(s_det, rb, period=5.0, channel="fd.c"))
        p_det = world.attach(pid, CToPTransformation(
            c_det, send_period=5.0, alive_period=5.0,
            initial_timeout=15.0, channel="fd.p"))
        stacks.append((w_det, s_det, c_det, p_det))
    return world, stacks


class TestReductionChain:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_stage_satisfies_its_class(self, seed):
        world, stacks = build_chain(seed=seed)
        world.schedule_crash(4, 80.0)
        world.run(until=2500.0)

        s_results = check_fd_class_on_world(
            world, EVENTUALLY_STRONG, channel="fd.s")
        assert all(s_results.values()), ("<>S stage", s_results)

        c_results = check_fd_class_on_world(
            world, EVENTUALLY_CONSISTENT, channel="fd.c")
        assert all(c_results.values()), ("<>C stage", c_results)

        p_results = check_fd_class_on_world(
            world, EVENTUALLY_PERFECT, channel="fd.p")
        assert all(p_results.values()), ("<>P stage", p_results)

    def test_chain_survives_leader_crash(self):
        """Crash the process the chain elects; the pipeline must re-elect
        and re-stabilize all the way to the ◇P output."""
        world, stacks = build_chain(seed=2)
        world.schedule_crash(0, 100.0)  # min-pid: the likely elected leader
        world.run(until=4000.0)
        p_results = check_fd_class_on_world(
            world, EVENTUALLY_PERFECT, channel="fd.p")
        assert all(p_results.values()), p_results
        # All correct processes converge on suspecting exactly {0}.
        for _, _, _, p_det in stacks:
            if not p_det.crashed:
                assert p_det.suspected() == {0}

    def test_chain_drives_consensus(self):
        """The ◇C stage of the chain can drive the Figs. 3–4 algorithm."""
        from repro.consensus import ECConsensus, propose_all

        world, stacks = build_chain(seed=3)
        protos = []
        for pid in world.pids:
            rb = world.attach(pid, ReliableBroadcast(channel="cons.rb"))
            protos.append(world.attach(
                pid, ECConsensus(stacks[pid][2], rb, channel="cons")))
        world.start()
        propose_all(protos)
        world.run(until=2500.0)
        assert all(p.decided for p in protos)
        assert len({p.decision for p in protos}) == 1
