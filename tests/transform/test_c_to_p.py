"""Tests for the ◇C → ◇P transformation of Fig. 2 (Theorem 1).

The transformation's requirements are wired exactly as the paper states
them: the (eventual) leader's *input* links are partially synchronous and
its *output* links are fair-lossy; nothing is assumed about other links.
"""

import pytest

from repro.analysis import (
    check_fd_class_on_world,
    detection_latency,
)
from repro.errors import ConfigurationError
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_PERFECT,
    OMEGA,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import (
    FairLossyLink,
    FixedDelay,
    ReliableLink,
    World,
)
from repro.transform import CToPTransformation
from repro.workloads import partially_synchronous_link


def build(
    n=5,
    seed=0,
    leader=0,
    stabilize=0.0,
    lossy_outputs=None,
    gst=0.0,
    crash=None,
    source_class=EVENTUALLY_CONSISTENT,
):
    """World with a ◇C oracle + the Fig. 2 transformation on every process.

    The designated leader's input links are partially synchronous and its
    output links fair-lossy when *lossy_outputs* is set.
    """
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    if gst:
        world.network.set_links_to(
            leader, lambda: partially_synchronous_link(gst=gst)
        )
    if lossy_outputs is not None:
        world.network.set_links_from(
            leader,
            lambda: FairLossyLink(
                inner=ReliableLink(FixedDelay(1.0)), loss_prob=lossy_outputs
            ),
        )
    config = OracleConfig(
        stabilize_time=stabilize,
        pre_behavior="erratic" if stabilize else "ideal",
        leader=leader,
    )
    transforms = []
    for pid in world.pids:
        source = world.attach(
            pid, OracleFailureDetector(source_class, config, channel="fd.c")
        )
        transforms.append(
            world.attach(
                pid,
                CToPTransformation(
                    source,
                    send_period=4.0,
                    alive_period=4.0,
                    initial_timeout=10.0,
                    channel="fdp",
                ),
            )
        )
    if crash is not None:
        world.schedule_crash(*crash)
    return world, transforms


class TestParameters:
    def test_validation(self):
        world = World(n=2, seed=0)
        src = world.attach(0, OracleFailureDetector(EVENTUALLY_CONSISTENT,
                                                    channel="fd.c"))
        with pytest.raises(ConfigurationError):
            CToPTransformation(src, send_period=0)
        with pytest.raises(ConfigurationError):
            CToPTransformation(src, timeout_increment=-1)


class TestTheorem1:
    def test_crashed_process_suspected_by_everyone(self):
        world, dets = build(seed=1, crash=(3, 50.0))
        world.run(until=500.0)
        for det in dets:
            if det.pid != 3:
                assert det.suspected() == {3}

    def test_no_false_suspicion_in_steady_state(self):
        world, dets = build(seed=1)
        world.run(until=500.0)
        assert all(det.suspected() == frozenset() for det in dets)

    def test_leader_never_suspects_itself(self):
        world, dets = build(seed=1, crash=(3, 50.0))
        world.run(until=500.0)
        assert 0 not in dets[0].suspected()

    def test_satisfies_dp_with_psync_inputs_and_lossy_outputs(self):
        world, dets = build(
            seed=2,
            gst=80.0,
            lossy_outputs=0.4,
            stabilize=60.0,
            crash=(4, 120.0),
        )
        world.run(until=3000.0)
        results = check_fd_class_on_world(world, EVENTUALLY_PERFECT,
                                          channel="fdp")
        assert all(results.values()), results

    def test_adaptive_timeout_stops_false_suspicions(self):
        """The Theorem 1 contradiction argument: after finitely many
        mistakes, Δp(q) exceeds 2Φ+Δ and q is never suspected again."""
        world, dets = build(seed=3, gst=100.0, stabilize=0.0)
        world.run(until=2500.0)
        leader_det = dets[0]
        # The leader's timeouts grew beyond the initial 10.0 for at least
        # one process (chaotic pre-GST inputs forced mistakes)...
        assert any(leader_det.delta_of(q) > 10.0 for q in range(1, 5))
        # ...and at the end nobody is falsely suspected.
        assert leader_det.suspected() == frozenset()

    def test_works_with_pure_omega_source(self):
        """The paper: "this algorithm could also be used to transform an Ω
        failure detector into a ◇P failure detector"."""
        world, dets = build(seed=4, source_class=OMEGA, crash=(2, 60.0))
        world.run(until=800.0)
        results = check_fd_class_on_world(world, EVENTUALLY_PERFECT,
                                          channel="fdp")
        assert all(results.values()), results

    def test_followers_adopt_leader_list_only_from_trusted(self):
        world, dets = build(seed=5, crash=(3, 50.0))
        world.run(until=500.0)
        # Follower 1 never heard I-AM-ALIVEs itself; its list must have come
        # from the leader (Task 5).
        assert dets[1].suspected() == {3}


class TestCost:
    def test_steady_state_cost_2n_minus_2(self):
        n = 6
        world, dets = build(n=n, seed=0)
        world.run(until=800.0)
        sends = world.trace.select(
            kind="send", after=400.0, before=800.0,
            where=lambda e: e.get("channel") == "fdp",
        )
        per_period = len(sends) / (400.0 / 4.0)
        # Task 1 (leader -> others): n-1; Task 2 (others -> leader): n-1.
        assert per_period == pytest.approx(2 * (n - 1), rel=0.1)

    def test_cheaper_than_all_to_all_heartbeat(self):
        """E3's headline: 2(n-1) vs n(n-1) messages per period."""
        from repro.fd import HeartbeatEventuallyPerfect

        n = 6
        world, dets = build(n=n, seed=0)
        world.run(until=800.0)
        transform_sends = len(world.trace.select(
            kind="send", after=400.0,
            where=lambda e: e.get("channel") == "fdp"))

        w2 = World(n=n, seed=0, default_link=ReliableLink(FixedDelay(1.0)))
        w2.attach_all(lambda pid: HeartbeatEventuallyPerfect(period=4.0))
        w2.run(until=800.0)
        heartbeat_sends = len(w2.trace.select(
            kind="send", after=400.0,
            where=lambda e: e.get("channel") == "fd"))
        assert heartbeat_sends > 2.5 * transform_sends

    def test_detection_latency_below_ring(self):
        """E8: one-hop list dissemination beats the ring's O(n) hops."""
        from repro.fd import RingDetector

        n = 8
        world, dets = build(n=n, seed=1, crash=(4, 60.0))
        world.run(until=1500.0)
        lat_transform = detection_latency(
            world.trace, 4, 60.0, world.correct_pids, channel="fdp"
        )

        w2 = World(n=n, seed=1, default_link=ReliableLink(FixedDelay(1.0)))
        w2.attach_all(lambda pid: RingDetector(period=4.0, initial_timeout=10.0))
        w2.schedule_crash(4, 60.0)
        w2.run(until=1500.0)
        lat_ring = detection_latency(
            w2.trace, 4, 60.0, w2.correct_pids, channel="fd"
        )
        assert lat_transform is not None and lat_ring is not None
        assert lat_transform < lat_ring
