"""Tests for the gossip ◇W→◇S transformation and the counter-based ◇S→◇C."""

import pytest

from repro.analysis import (
    build_histories,
    check_fd_class_on_world,
    check_strong_completeness,
    crash_times,
)
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    EVENTUALLY_STRONG,
    EVENTUALLY_WEAK,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay, ReliableLink, World
from repro.transform import SToC, WToS, attach_s_to_c_stack


def w_to_s_world(n=5, seed=0, slander=frozenset()):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    dets = []
    for pid in world.pids:
        w_det = world.attach(
            pid,
            OracleFailureDetector(
                EVENTUALLY_WEAK,
                OracleConfig(pre_behavior="ideal", slander=slander),
                channel="fd.w",
            ),
        )
        dets.append(world.attach(pid, WToS(w_det, period=5.0)))
    return world, dets


class TestWToS:
    def test_upgrades_weak_to_strong_completeness(self):
        world, dets = w_to_s_world(seed=1)
        world.schedule_crash(4, 30.0)
        world.run(until=400.0)
        # The ◇W oracle only has the witness (pid 0) suspect the crash; the
        # gossip must spread it to everyone.
        for det in dets:
            if det.pid != 4:
                assert 4 in det.suspected()
        histories = build_histories(world.trace, channel="fd")
        result = check_strong_completeness(
            histories, crash_times(world.trace), world.correct_pids, world.now
        )
        assert result.ok

    def test_senders_are_cleared(self):
        world, dets = w_to_s_world(seed=1)
        world.run(until=300.0)
        # No crashes: gossip from everyone keeps everyone clear.
        assert all(det.suspected() == frozenset() for det in dets)

    def test_preserves_eventual_weak_accuracy_with_slander(self):
        world, dets = w_to_s_world(seed=2, slander=frozenset({2}))
        world.schedule_crash(4, 30.0)
        world.run(until=500.0)
        results = check_fd_class_on_world(world, EVENTUALLY_STRONG)
        assert all(results.values()), results
        # Process 2 stays slandered (it is in every report), process 0 clean.
        assert 2 in dets[1].suspected()

    def test_message_cost_n_squared(self):
        n = 5
        world, dets = w_to_s_world(n=n, seed=0)
        world.run(until=300.0)
        sends = world.trace.select(
            kind="send", after=150.0, before=300.0,
            where=lambda e: e.get("channel") == "fd",
        )
        per_period = len(sends) / (150.0 / 5.0)
        assert per_period == pytest.approx(n * (n - 1), rel=0.1)


def s_to_c_world(n=5, seed=0, slander=frozenset(), stabilize=0.0, leader=None):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    config = OracleConfig(
        pre_behavior="ideal" if stabilize == 0 else "erratic",
        stabilize_time=stabilize,
        slander=slander,
        leader=leader,
    )
    dets = attach_s_to_c_stack(
        world,
        lambda pid: OracleFailureDetector(
            EVENTUALLY_STRONG, config, channel="fd.s"
        ),
        period=5.0,
    )
    return world, dets


class TestSToC:
    def test_elects_common_correct_leader(self):
        world, dets = s_to_c_world(seed=1)
        world.schedule_crash(0, 30.0)
        world.run(until=600.0)
        leaders = {det.trusted() for det in dets if det.pid != 0}
        assert len(leaders) == 1
        assert leaders.pop() in world.correct_pids

    def test_crashed_processes_accumulate_counts(self):
        world, dets = s_to_c_world(seed=1)
        world.schedule_crash(0, 30.0)
        world.run(until=600.0)
        det = dets[1]
        assert det.count_of(0) > det.count_of(1)

    def test_leader_not_crashed_despite_low_count(self):
        # A process that crashes *early* has a low count; the argmin must
        # still not elect it forever because its count keeps growing via
        # reports from everyone else.
        world, dets = s_to_c_world(seed=3)
        world.schedule_crash(1, 10.0)
        world.run(until=800.0)
        for det in dets:
            if det.pid != 1:
                assert det.trusted() != 1

    def test_satisfies_ec_class_with_erratic_prefix(self):
        world, dets = s_to_c_world(seed=4, stabilize=80.0)
        world.schedule_crash(4, 120.0)
        world.run(until=1500.0)
        results = check_fd_class_on_world(world, EVENTUALLY_CONSISTENT)
        assert all(results.values()), results

    def test_slandered_process_not_elected(self):
        # Designate 1 as the ◇S oracle's accuracy witness so that 0 may be
        # slandered (the oracle never slanders its designated leader).
        world, dets = s_to_c_world(seed=5, slander=frozenset({0}), leader=1)
        world.run(until=800.0)
        for det in dets:
            assert det.trusted() != 0
            # ...but slander keeps 0 suspected (a process never suspects
            # itself, so skip pid 0's own view).
            if det.pid != 0:
                assert 0 in det.suspected()
