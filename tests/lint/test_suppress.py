"""Suppression comments: per-line, standalone-line, blanket, skip-file."""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths
from repro.lint.suppress import parse_suppressions

FIXTURES = Path(__file__).parent / "fixtures"


def test_suppressed_fixture_is_clean():
    result = lint_paths([FIXTURES / "suppressed.py"])
    assert result.findings == []
    assert result.files_checked == 1


def test_skip_file_fixture_is_clean():
    result = lint_paths([FIXTURES / "skip_file.py"])
    assert result.findings == []
    assert result.files_checked == 1


def test_scoped_ignore_only_covers_named_rule():
    supp = parse_suppressions("x = 1  # lint: ignore[wall-clock]\n")
    assert supp.is_suppressed("wall-clock", 1)
    assert not supp.is_suppressed("global-random", 1)
    assert not supp.is_suppressed("wall-clock", 2)


def test_blanket_ignore_covers_every_rule():
    supp = parse_suppressions("x = 1  # lint: ignore\n")
    assert supp.is_suppressed("wall-clock", 1)
    assert supp.is_suppressed("dropped-task", 1)


def test_standalone_comment_covers_next_line():
    supp = parse_suppressions("# lint: ignore[wall-clock]\nx = 1\n")
    assert supp.is_suppressed("wall-clock", 2)


def test_comma_separated_rule_list():
    supp = parse_suppressions("x = 1  # lint: ignore[wall-clock, id-ordering]\n")
    assert supp.is_suppressed("wall-clock", 1)
    assert supp.is_suppressed("id-ordering", 1)
    assert not supp.is_suppressed("global-random", 1)


def test_skip_file_flag_parsed():
    supp = parse_suppressions("# lint: skip-file\nx = 1\n")
    assert supp.skip_file
    assert not parse_suppressions("x = 1\n").skip_file
