"""The project model and call graph, exercised over the ``cg`` fixture
package: structural module naming, aliased-import resolution, method and
constructor edges, task-spawn/callback "ref" edges, and the memoized
external-reachability query the reach rules are built on."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.engine import _parse_file
from repro.lint.program.callgraph import reach_external
from repro.lint.program.model import build_project_model, model_module_name

FIXTURES = Path(__file__).parent / "fixtures" / "program"


def _model(package: str, references=()):
    targets = [
        _parse_file(p)[0] for p in sorted((FIXTURES / package).rglob("*.py"))
    ]
    refs = [
        _parse_file(p)[0]
        for pkg in references
        for p in sorted((FIXTURES / pkg).rglob("*.py"))
    ]
    return build_project_model(targets, refs)


def _edges(model, key, how=None):
    func = model.functions[key]
    return [
        callee for callee, _node, kind in func.calls
        if how is None or kind == how
    ]


def test_model_module_name_stops_at_package_root():
    assert model_module_name(FIXTURES / "cg" / "work.py") == "cg.work"
    assert model_module_name(FIXTURES / "cg" / "__init__.py") == "cg"
    assert model_module_name(FIXTURES / "cg" / "helpers.py") == "cg.helpers"


def test_modules_functions_and_classes_indexed():
    model = _model("cg")
    assert set(model.modules) == {"cg", "cg.helpers", "cg.work"}
    assert "cg.work.Worker" in model.classes
    assert model.classes["cg.work.Worker"].methods["run"] == (
        "cg.work.Worker.run"
    )
    assert model.functions["cg.work.driver"].is_async
    assert not model.functions["cg.work.tick"].is_async


def test_self_method_and_aliased_import_edges():
    model = _model("cg")
    # self.step() resolves through the owning class.
    assert "cg.work.Worker.step" in _edges(model, "cg.work.Worker.run", "call")
    # leaf() resolves through the from-import; h.sync_sleep() through the
    # module alias.
    assert "cg.helpers.leaf" in _edges(model, "cg.work.Worker.step", "call")
    assert "cg.helpers.sync_sleep" in _edges(model, "cg.work.driver", "call")
    # Worker() resolves to the constructor.
    assert "cg.work.Worker.__init__" in _edges(model, "cg.work.driver", "call")


def test_callback_and_nested_defs_become_ref_edges():
    model = _model("cg")
    refs = _edges(model, "cg.work.driver", "ref")
    # loop.call_later(0.1, tick): tick is scheduled, not called.
    assert "cg.work.tick" in refs
    # The nested closure is a ref edge too (it may run later).
    assert "cg.work.driver.finish" in refs
    # create_task(pump()) is a direct call edge to the coroutine function.
    assert "cg.work.pump" in _edges(model, "cg.work.driver", "call")


def test_external_calls_recorded_canonically():
    model = _model("cg")
    externals = {
        name for name, _ in model.functions["cg.helpers.sync_sleep"].external_calls
    }
    assert "time.sleep" in externals
    externals = {
        name for name, _ in model.functions["cg.work.pump"].external_calls
    }
    assert "asyncio.sleep" in externals


def test_canonical_symbol_follows_reexport_chain():
    model = _model("cg")
    assert model.canonical_symbol("cg", "driver") == "cg.work.driver"
    assert model.split_module("cg.helpers.leaf") == ("cg.helpers", "leaf")


def test_resolve_string_through_imported_constant():
    model = _model("proto_good")
    sender = model.modules["proto_good.sender"]
    # `PING` in sender.py is imported from kinds.py: the model resolves
    # the cross-module constant the per-file rules cannot see.
    name = ast.parse("PING", mode="eval").body
    assert model.resolve_string(sender, name) == "fixture-ping"


def test_reach_external_traverses_sync_chains_only():
    model = _model("cg")
    reach = reach_external(
        model, {"time.sleep"}, traverse=lambda f: not f.is_async
    )
    blocked = reach["cg.helpers.sync_sleep"]
    assert blocked is not None and blocked[0] == "time.sleep"
    assert reach["cg.helpers.leaf"] is None
    # tick -> h.leaf() never blocks.
    assert reach["cg.work.tick"] is None


def test_reference_modules_feed_resolution_but_are_not_targets():
    model = _model("exports_good", references=["exports_bad"])
    names = {m.name for m in model.target_modules()}
    assert "exports_bad" not in names and "exports_good" in names
    # The reference module is still fully indexed for cross-referencing.
    assert "exports_bad.impl.used_fn" in model.functions
    assert model.modules["exports_bad"].reference
