"""Engine behavior: module-name scoping, syntax errors, discovery."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import lint_paths
from repro.lint.engine import default_target, iter_python_files, module_name


def test_module_name_maps_package_paths(tmp_path):
    net = tmp_path / "repro" / "net"
    net.mkdir(parents=True)
    assert module_name(net / "tcp.py") == "repro.net.tcp"
    assert module_name(tmp_path / "repro" / "sim" / "world.py") == (
        "repro.sim.world"
    )
    assert module_name(tmp_path / "repro" / "__init__.py") == "repro"
    assert module_name(tmp_path / "fixture.py") == ""


def _write(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def test_scope_limits_rules_to_their_packages(tmp_path):
    wall = "import time\n\ndef f():\n    return time.time()\n"
    # Under repro.net, the determinism rules don't apply: reading the wall
    # clock is the runtime's job.
    net_file = _write(tmp_path, "repro/net/mod.py", wall)
    assert lint_paths([net_file]).findings == []
    # The same source under repro.sim is a violation.
    sim_file = _write(tmp_path, "repro/sim/mod.py", wall)
    assert [f.rule for f in lint_paths([sim_file]).findings] == ["wall-clock"]
    # And asyncio hazards are net-only: a dropped task in sim code (which
    # never runs an event loop) is not this analyzer's business.
    hazard = (
        "import asyncio\n\nasync def go(c):\n    asyncio.ensure_future(c)\n"
    )
    assert lint_paths([_write(tmp_path, "repro/sim/h.py", hazard)]).findings == []
    assert [
        f.rule for f in lint_paths([_write(tmp_path, "repro/net/h.py", hazard)]).findings
    ] == ["dropped-task"]


def test_syntax_error_becomes_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = lint_paths([bad])
    assert [f.rule for f in result.findings] == ["syntax-error"]
    assert result.exit_code == 1


def test_missing_path_raises_configuration_error(tmp_path):
    with pytest.raises(ConfigurationError):
        lint_paths([tmp_path / "nope"])


def test_iter_python_files_sorted_and_deduped(tmp_path):
    b = _write(tmp_path, "b.py", "x = 1\n")
    a = _write(tmp_path, "a.py", "x = 1\n")
    files = iter_python_files([tmp_path, a, b])
    assert files == [a, b]


def test_default_target_is_the_repro_package():
    target = default_target()
    assert target.name == "repro"
    assert (target / "lint").is_dir()
