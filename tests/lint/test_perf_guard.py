"""Tier-1 guard: the full whole-program pass over ``src/repro`` fits a
wall budget and is byte-identical across runs.

The linter runs on every PR; if the project model's cost curve bends (an
accidental quadratic in the call graph, an unmemoized reach query), this
is where it shows first.  The budget is deliberately loose — an order of
magnitude above the measured time — so only real regressions trip it.
"""

from __future__ import annotations

import time

from repro.lint import lint_paths
from repro.lint.reporting import render_json, render_sarif, render_text

#: Generous wall budget (seconds) for one full run; measured ~3 s.
_BUDGET = 60.0


def test_whole_program_pass_fits_budget_and_is_deterministic():
    start = time.monotonic()
    first = lint_paths()
    first_elapsed = time.monotonic() - start
    assert first_elapsed < _BUDGET, (
        f"whole-program lint took {first_elapsed:.1f}s (budget {_BUDGET}s)"
    )
    second = lint_paths()
    # Byte-identical output across runs, in every format: the linter holds
    # itself to the determinism contract it enforces.
    assert render_text(first) == render_text(second)
    assert render_json(first) == render_json(second)
    assert render_sarif(first) == render_sarif(second)
    assert first.files_checked == second.files_checked > 50
