"""Bad: ordering by memory address."""


def order(components):
    return sorted(components, key=id)


def first(components):
    return min(components, key=lambda c: id(c))
