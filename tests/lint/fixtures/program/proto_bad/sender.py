"""Producers: a component kind nobody handles, a service op nobody serves,
and a client branch on a status the service never produces."""

from .kinds import PING


class Prober:
    def probe(self, dst):
        self.send(dst, (PING, 0.0))  # bad: no dispatch arm handles PING

    def send(self, dst, payload):
        pass


def put_key(client):
    reply = client.request("fixture-get", key="k")  # bad: no handler arm
    if reply.status == "fixture-stale":  # bad: never produced
        return None
    return reply
