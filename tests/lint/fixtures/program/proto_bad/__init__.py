"""Bad: message kinds without handlers, dispatch arms without producers."""
