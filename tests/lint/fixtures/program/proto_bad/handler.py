"""Dispatch arms: one dead component kind, one dead service op, plus the
Reply producer that anchors the status space."""


class Replica:
    def on_message(self, src, payload):
        kind = payload[0]
        if kind == "fixture-pong":  # bad: nobody sends fixture-pong
            return "pong"
        return None

    def on_request(self, command):
        op = command.get("op")
        if op == "fixture-put":  # bad: no client issues fixture-put
            return Reply(status="fixture-ok")
        return Reply(status="fixture-error")


class Reply:
    def __init__(self, status):
        self.status = status
