PING = "fixture-ping"
