"""Good near-miss: the same shape as reach_bad, without a blocking path."""
