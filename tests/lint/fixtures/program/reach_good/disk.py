_BUFFER = []


def buffer_write(frame):
    _BUFFER.append(frame)
