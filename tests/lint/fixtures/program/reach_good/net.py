"""Near-misses for async-blocking-reach: the called sync helper does not
block, the async helper awaits properly, and the module's genuinely
blocking function is never reachable from any async def."""

import time

from .disk import buffer_write


async def pump():
    buffer_write("frame")  # fine: the sync path never blocks
    await drain()


async def drain():
    pass


def offline_compact():
    # Blocking, but only ever called from sync CLI code — no async def
    # reaches it, so the reach rule must stay silent.
    time.sleep(0.01)
