"""Bad: constant-valued record sites violating the obs registries."""
