BAD_KIND = "fixture-unregistered-event"
DECIDE = "decide"
BAD_METRIC = "fixture_bogus_total"
SENT = "bytes_sent_total"
