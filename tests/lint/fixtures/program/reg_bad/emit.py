"""Every kind/name below is a *constant*, imported from names.py — exactly
the sites the per-file literal-only rules cannot judge."""

from .names import BAD_KIND, BAD_METRIC, DECIDE, SENT


def record_events(trace, now):
    trace.record(now, BAD_KIND, pid=0)  # bad: unregistered event kind
    trace.record(now, DECIDE, algo="ec")  # bad: missing round, value


def record_metrics(metrics):
    metrics.inc(BAD_METRIC)  # bad: unregistered metric name
    metrics.inc(SENT, amount=8)  # bad: missing the declared channel label
