# internal_only is never imported anywhere, but a *submodule* __all__ is
# star-import control, not an API promise — no warning.
__all__ = ["helper", "internal_only"]


def helper():
    return 1


def internal_only():
    return 2
