"""Good near-miss: lazy re-export, entry point, and namespace listing."""

from . import impl
from .impl import helper

__all__ = ["helper", "main", "impl", "lazy_thing"]


def main():
    return helper()


def __getattr__(name):
    # PEP 562 lazy re-export: lazy_thing is provided dynamically, so the
    # undefined-export error must not fire on it.
    if name == "lazy_thing":
        return impl.helper
    raise AttributeError(name)
