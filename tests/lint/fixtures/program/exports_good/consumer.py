from .impl import helper


def run():
    return helper()
