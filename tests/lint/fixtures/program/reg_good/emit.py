"""Near-misses for registry-flow: valid constants, a literal kind (the
per-file rule's territory), and a genuinely dynamic kind."""

from .names import DECIDE, SENT


def record_events(trace, now, kind):
    trace.record(now, DECIDE, algo="ec", round=1, value="v")  # fine
    trace.record(now, "decide", algo="ec", round=1, value="v")  # literal:
    # the per-file trace-schema rule owns it, not the program pass
    trace.record(now, kind, pid=0)  # dynamic: checked at run time


def record_metrics(metrics):
    metrics.inc(SENT, amount=8, channel="fd")  # fine: exact labels
