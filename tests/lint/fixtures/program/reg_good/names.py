DECIDE = "decide"
SENT = "bytes_sent_total"
