"""Good near-miss: resolved constants that satisfy the registries."""
