"""Producers matching every arm in handler.py (via the shared constant)."""

from .kinds import PING


class Prober:
    def probe(self, dst):
        self.send(dst, (PING, 0.0))  # fine: handled in handler.py

    def send(self, dst, payload):
        pass


def put_key(client):
    reply = client.request("fixture-get", key="k")  # fine: handled
    if reply.status == "fixture-ok":  # fine: produced by the handler
        return reply
    return None
