PING = "fixture-ping"
