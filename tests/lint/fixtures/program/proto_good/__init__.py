"""Good near-miss: every kind/op round-trips; weak signals stay silent."""
