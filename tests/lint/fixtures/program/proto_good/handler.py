"""Arms for everything produced, plus near-misses the rule must not flag:
a weak whole-payload compare, and attribute/`.get` reads of "kind" (those
are TraceEvent analysis, not message dispatch)."""

from .kinds import PING


class Replica:
    def on_message(self, src, payload):
        kind = payload[0]
        if kind == PING:  # resolved through the imported constant
            return "pong"
        if payload == "fixture-shutdown":  # weak: accepted, never "dead"
            return None
        return None

    def on_request(self, command):
        op = command.get("op")
        if op == "fixture-get":
            return Reply(status="fixture-ok")
        return Reply(status="fixture-error")


class Reply:
    def __init__(self, status):
        self.status = status


def summarize(events):
    # Near-miss: `.kind` here is a trace-event field, not message dispatch.
    return [ev for ev in events if ev.kind == "send"]


def pick(meta):
    # Near-miss: `.get("kind")` on a dict is not a dispatch arm either.
    return meta.get("kind") == "fixture-other"
