"""Bad: sim-style code calling out to helpers that read ambient state."""
