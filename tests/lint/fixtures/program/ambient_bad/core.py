"""The ambient read sits in a helper module, so the per-file wall-clock
rule (scoped to the caller's file) cannot see the hazard at this call."""

from .util import jittered, stamp


def step(events):
    events.append(stamp())  # bad: helper reads time.time()
    return jittered(10.0)  # bad: helper reads the global RNG
