import random
import time


def stamp():
    return time.time()


def jittered(base):
    return base * random.random()
