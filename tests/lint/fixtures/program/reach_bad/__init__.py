"""Bad: async code reaching blocking calls through sync helpers."""
