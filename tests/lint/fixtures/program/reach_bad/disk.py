import time


def flush():
    _write()


def _write():
    time.sleep(0.01)
