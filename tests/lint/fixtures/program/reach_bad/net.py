"""The blocking call hides two sync hops away from the async def, so the
per-file blocking-call rule (which only looks inside async bodies) cannot
see it — only the whole-program reachability pass can."""

from .disk import flush


async def pump(loop):
    flush()  # bad: sync path reaches time.sleep
    loop.call_later(0.5, retry)  # bad: scheduled callback blocks too


def retry():
    flush()
