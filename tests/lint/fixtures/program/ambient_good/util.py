def stamp(now):
    return now


def jittered(base, rng):
    return base * rng.random()
