"""Good near-miss: ambient state threaded in, never read transitively."""
