"""Near-misses for ambient-state-reach: helpers take the clock and rng as
parameters (the remedy the rule suggests), so no called path reads
ambient state."""

from .util import jittered, stamp


def step(events, now, rng):
    events.append(stamp(now))  # fine: the clock is threaded through
    return jittered(10.0, rng)  # fine: the rng is injected
