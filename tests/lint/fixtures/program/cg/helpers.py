"""Leaf helpers the call graph must resolve through aliased imports."""

import time

GREETING = "hello"


def leaf():
    return GREETING


def sync_sleep():
    time.sleep(0.01)
