"""Call-graph fixture package: aliases, methods, spawn edges."""

from .work import driver

__all__ = ["driver"]
