"""Callers: methods, aliased module calls, task-spawn and callback edges."""

import asyncio

from . import helpers as h
from .helpers import leaf


class Worker:
    def __init__(self):
        self.count = 0

    def run(self):
        self.step()

    def step(self):
        self.count += 1
        return leaf()


async def driver(loop):
    worker = Worker()
    worker.run()
    h.sync_sleep()
    loop.call_later(0.1, tick)
    asyncio.create_task(pump())

    def finish():
        return leaf()

    return finish


def tick():
    return h.leaf()


async def pump():
    await asyncio.sleep(0)
