__all__ = ["used_fn", "dead_fn", "phantom"]  # bad: phantom is never bound


def used_fn():
    return 1


def dead_fn():
    return 2
