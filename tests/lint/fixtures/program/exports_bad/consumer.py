from .impl import used_fn


def run():
    return used_fn()
