"""Bad: a ghost export and a dead public name on the package surface."""

from .impl import dead_fn, used_fn

__all__ = ["used_fn", "dead_fn", "ghost"]
