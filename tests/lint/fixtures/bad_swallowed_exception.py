"""Bad: broad handlers that silently discard errors."""


def drain(queue):
    try:
        queue.pop()
    except Exception:
        pass


def close(sock):
    try:
        sock.close()
    except:
        pass
