"""Bad: unseeded global / OS-entropy randomness."""

import os
import random
import uuid


def jitter():
    return random.random()


def token():
    return uuid.uuid4()


def noise():
    return os.urandom(8)


def fresh_rng():
    return random.Random()
