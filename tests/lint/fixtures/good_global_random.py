"""Good: randomness drawn from an injected, seeded stream."""

import random


class Proto:
    def __init__(self, seed):
        self.rng = random.Random(seed)

    def jitter(self):
        return self.rng.random()
