"""Good: the asyncio equivalent yields to the loop."""

import asyncio


async def poll():
    await asyncio.sleep(0.1)
