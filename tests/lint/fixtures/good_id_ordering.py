"""Good: ordering by a stable protocol field."""


def order(components):
    return sorted(components, key=lambda c: c.pid)
