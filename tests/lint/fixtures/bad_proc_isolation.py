"""Bad: OS-process management outside repro.proc."""

import os
import subprocess


def restart_node(book, pid):
    subprocess.run(["repro", "node", "--book", book, "--pid", str(pid)])


def crash_node(os_pid):
    os.kill(os_pid, 9)
