"""Good: metric updates conforming to the metric-schema registry."""


class Component:
    def on_deliver(self, name, labels):
        self.metrics.inc("messages_sent_total", channel="fd")
        self.metrics.inc("bytes_sent_total", amount=128, channel="fd")
        self.metrics.inc("frames_undecodable_total")
        self.metrics.set("fd_suspected_size", 2, channel="fd")
        self.metrics.inc(name, channel="fd")  # dynamic name: run-time checked
        self.metrics.inc("messages_sent_total", **labels)  # splat: run time


def sample(host):
    host.metrics.set("transport_frames_sent", 41)
