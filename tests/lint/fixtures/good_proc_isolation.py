"""Good: crashes go through the launcher, which tracks the failure
pattern for the postmortem checkers."""


def crash_leader(cluster, leader_pid, at):
    cluster.crash(leader_pid, at=at)


async def run_scenario(cluster):
    await cluster.start()
    await cluster.wait_quiescent()
    await cluster.stop()
    return cluster.verdicts()
