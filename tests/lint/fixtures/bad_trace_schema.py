"""Bad: trace emissions that violate the event-schema registry."""


class Detector:
    def on_change(self):
        self.trace("fd-output", channel="fd")  # unknown kind (typo of "fd")
        self.trace("fd", channel="fd")  # missing suspected/trusted

    def trace(self, kind, **data):
        pass


def record_crash(trace, now, pid):
    trace.record(now, "crashed", pid)  # unknown kind (the kind is "crash")
