"""Violations silenced with every suppression form the linter supports."""

import time


def stamp_trailing():
    return time.time()  # lint: ignore[wall-clock]


def stamp_standalone():
    # lint: ignore[wall-clock]
    return time.time()


def stamp_blanket():
    return time.time()  # lint: ignore
