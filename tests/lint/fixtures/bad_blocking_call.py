"""Bad: a synchronous sleep inside a coroutine stalls the event loop."""

import time


async def poll():
    time.sleep(0.1)
