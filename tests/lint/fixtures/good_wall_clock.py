"""Good: time comes from the injected scheduler clock."""


class Proto:
    def __init__(self):
        self.now = 0.0

    def timestamp(self):
        return self.now
