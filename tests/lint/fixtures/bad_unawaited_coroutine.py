"""Bad: coroutine calls built and dropped — nothing runs."""

import asyncio


async def heartbeat():
    asyncio.sleep(0.1)


async def run():
    heartbeat()
