"""Good: iteration order pinned with sorted() before sending."""


class Proto:
    def __init__(self):
        self.peers = set()

    def on_tick(self):
        for dst in sorted(self.peers):
            self.send(dst, "hb")

    def quorum(self):
        return len(self.peers)

    def send(self, dst, payload):
        pass
