"""Good: payloads built from codec-supported types only."""


class Proto:
    def on_tick(self):
        self.send(0, {"seq": 1, "peers": frozenset({1, 2})})
        self.send(1, ("hb", 0.5, None))
        self.broadcast(["estimate", True])

    def send(self, dst, payload):
        pass

    def broadcast(self, payload):
        pass
