"""Bad: protocol logic reading the ambient wall clock."""

import datetime
import time


def timestamp():
    return time.time()


def deadline():
    return datetime.datetime.now()
