"""Bad: payloads the wire codec provably cannot encode."""


class Proto:
    def on_tick(self):
        self.send(0, b"\x00\x01")
        self.broadcast(lambda: None)
        self.send(1, {"blob": bytearray(4)})

    def send(self, dst, payload):
        pass

    def broadcast(self, payload):
        pass
