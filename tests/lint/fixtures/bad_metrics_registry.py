"""Bad: metric updates that violate the metric-schema registry."""


class Component:
    def on_deliver(self):
        self.metrics.inc("message_sent_total", channel="fd")  # typo'd name
        self.metrics.inc("messages_sent_total")  # missing the channel label
        self.metrics.inc("frames_undecodable_total", channel="fd")  # no labels declared
        self.metrics.set("fd_suspected_size", 2, chan="fd")  # wrong label key


def sample(host):
    host.metrics.observe("transport_latency", 0.5)  # unregistered histogram
