"""Good: the task reference is kept and reaped."""

import asyncio


async def work():
    return 1


async def main():
    task = asyncio.create_task(work())
    await task
