"""Good: every coroutine call is awaited."""

import asyncio


async def heartbeat():
    await asyncio.sleep(0.1)


async def run():
    await heartbeat()
