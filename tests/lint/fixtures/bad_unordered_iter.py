"""Bad: hash-order iteration feeding sends."""


class Proto:
    def __init__(self):
        self.peers = set()

    def on_tick(self):
        for dst in self.peers:
            self.send(dst, "hb")

    def send(self, dst, payload):
        pass
