"""Good: trace emissions conforming to the event-schema registry."""


class Detector:
    def on_change(self):
        self.trace("fd", channel="fd", suspected=frozenset(), trusted=None)
        self.trace("decide", algo="ec", value=1, round=2)

    def trace(self, kind, **data):
        pass


def record_crash(trace, now, pid, extra):
    trace.record(now, "crash", pid)
    trace.record(now, "drop", pid, reason="link")
    trace.record(now, "parked", pid, **extra)  # splat: keys checked at run time
