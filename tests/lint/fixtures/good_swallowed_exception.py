"""Good: specific exceptions, or broad ones recorded before continuing."""


def drain(queue):
    try:
        queue.pop()
    except IndexError:
        pass


def close(sock, stats):
    try:
        sock.close()
    except Exception:
        stats["close_errors"] = stats.get("close_errors", 0) + 1
