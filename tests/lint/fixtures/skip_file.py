# lint: skip-file
"""Entirely exempt: nothing below is reported."""

import time


def stamp():
    return time.time()
