"""Bad: fire-and-forget tasks with no reference kept."""

import asyncio


async def work():
    return 1


async def main():
    asyncio.create_task(work())
    asyncio.ensure_future(work())
