"""Reporter and baseline contracts: SARIF for code scanning, the JSON
schema bump, and the accepted-findings baseline round-trip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import lint_paths
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.reporting import render_sarif

FIXTURES = Path(__file__).parent / "fixtures" / "program"
BAD_PKG = str(FIXTURES / "exports_bad")


class TestSarif:
    def _log(self, capsys):
        assert lint_main(
            ["--format", "sarif", "--select", "unreachable-public", BAD_PKG]
        ) == 1
        return json.loads(capsys.readouterr().out)

    def test_envelope_matches_spec(self, capsys):
        log = self._log(capsys)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_rules_declared_and_indexed(self, capsys):
        log = self._log(capsys)
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert "unreachable-public" in ids and "wall-clock" in ids
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_severity_maps_to_level_and_origin_rides_along(self, capsys):
        results = self._log(capsys)["runs"][0]["results"]
        levels = {r["level"] for r in results}
        assert levels == {"error", "warning"}
        assert all(r["properties"]["origin"] == "program" for r in results)
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_sarif_is_deterministic(self):
        result = lint_paths(
            paths=[Path(BAD_PKG)], select=["unreachable-public"]
        )
        assert render_sarif(result) == render_sarif(result)


class TestBaseline:
    def test_write_then_filter_round_trip(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            ["--select", "unreachable-public", "--write-baseline",
             str(baseline), BAD_PKG]
        ) == 0
        assert "3 findings recorded" in capsys.readouterr().out
        # With the baseline applied, the same tree is clean — exit 0.
        assert lint_main(
            ["--select", "unreachable-public", "--baseline", str(baseline),
             BAD_PKG]
        ) == 0
        out = capsys.readouterr().out
        assert "no findings (3 baselined)" in out

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        result = lint_paths(
            paths=[Path(BAD_PKG)], select=["unreachable-public"]
        )
        write_baseline(tmp_path / "b.json", result.findings[:1])
        filtered = lint_paths(
            paths=[Path(BAD_PKG)], select=["unreachable-public"],
            baseline=tmp_path / "b.json",
        )
        assert len(filtered.findings) == len(result.findings) - 1
        assert filtered.baselined == 1

    def test_fingerprints_are_line_independent_and_sorted(self, tmp_path):
        result = lint_paths(
            paths=[Path(BAD_PKG)], select=["unreachable-public"]
        )
        path = tmp_path / "b.json"
        write_baseline(path, result.findings)
        raw = json.loads(path.read_text())
        assert raw["version"] == 1
        assert raw["fingerprints"] == sorted(raw["fingerprints"])
        assert all("::" in fp for fp in raw["fingerprints"])
        assert load_baseline(path) == set(raw["fingerprints"])

    def test_malformed_baseline_is_a_configuration_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a baseline"}')
        with pytest.raises(ConfigurationError):
            lint_paths(paths=[Path(BAD_PKG)], baseline=bad)
        assert lint_main(["--baseline", str(bad), BAD_PKG]) == 2
