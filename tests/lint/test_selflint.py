"""The linter's reason to exist: ``src/repro`` must stay clean.

This is the tier-1 gate: every determinism and asyncio-hazard contract the
analyzer encodes holds over the entire package, on every commit.  A failure
here prints the offending findings verbatim.
"""

from __future__ import annotations

from repro.lint import lint_paths


def test_src_repro_is_clean():
    result = lint_paths()  # default target: the installed repro package
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )
    assert result.exit_code == 0
    # Sanity: the walk really covered the package, not an empty directory.
    assert result.files_checked > 50
