"""Per-rule fixture tests: every rule has one bad and one good snippet.

Fixture files live outside any ``repro`` package directory, so their module
name resolves to ``""`` and *every* rule applies — which also makes these
tests assert the absence of cross-rule false positives: a bad fixture must
trigger exactly its target rule, a good fixture must be completely clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: (rule id, bad fixture, expected findings in it, good fixture)
CASES = [
    ("wall-clock", "bad_wall_clock.py", 2, "good_wall_clock.py"),
    ("global-random", "bad_global_random.py", 4, "good_global_random.py"),
    ("unordered-iter", "bad_unordered_iter.py", 1, "good_unordered_iter.py"),
    ("id-ordering", "bad_id_ordering.py", 2, "good_id_ordering.py"),
    ("blocking-call", "bad_blocking_call.py", 1, "good_blocking_call.py"),
    (
        "unawaited-coroutine",
        "bad_unawaited_coroutine.py", 2,
        "good_unawaited_coroutine.py",
    ),
    ("dropped-task", "bad_dropped_task.py", 2, "good_dropped_task.py"),
    (
        "swallowed-exception",
        "bad_swallowed_exception.py", 2,
        "good_swallowed_exception.py",
    ),
    ("payload-encodability", "bad_payload.py", 3, "good_payload.py"),
    ("trace-schema", "bad_trace_schema.py", 3, "good_trace_schema.py"),
    (
        "metrics-registry",
        "bad_metrics_registry.py", 5,
        "good_metrics_registry.py",
    ),
    ("proc-isolation", "bad_proc_isolation.py", 2, "good_proc_isolation.py"),
]


@pytest.mark.parametrize(
    "rule_id,bad,count,good", CASES, ids=[c[0] for c in CASES]
)
def test_bad_fixture_triggers_exactly_its_rule(rule_id, bad, count, good):
    result = lint_paths([FIXTURES / bad])
    assert result.files_checked == 1
    assert {f.rule for f in result.findings} == {rule_id}
    assert len(result.findings) == count
    assert result.exit_code == 1


@pytest.mark.parametrize(
    "rule_id,bad,count,good", CASES, ids=[c[0] for c in CASES]
)
def test_good_fixture_is_clean_under_all_rules(rule_id, bad, count, good):
    result = lint_paths([FIXTURES / good])
    assert result.findings == []
    assert result.exit_code == 0


def test_findings_carry_location_and_render(tmp_path):
    result = lint_paths([FIXTURES / "bad_wall_clock.py"])
    finding = result.findings[0]
    assert finding.line > 0 and finding.col > 0
    assert finding.rule == "wall-clock"
    rendered = finding.render()
    assert "bad_wall_clock.py" in rendered
    assert f":{finding.line}:" in rendered
    assert "wall-clock" in rendered


def test_select_restricts_to_one_rule():
    result = lint_paths([FIXTURES], select=["wall-clock"])
    assert {f.rule for f in result.findings} == {"wall-clock"}


def test_ignore_removes_a_rule():
    result = lint_paths([FIXTURES / "bad_wall_clock.py"], ignore=["wall-clock"])
    assert result.findings == []
