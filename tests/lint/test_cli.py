"""Lint CLI contract: exit codes 0/1/2, JSON output, rule listing, and the
``python -m repro lint`` subcommand wiring."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main
from repro.lint.registry import all_program_rules, all_rules

FIXTURES = Path(__file__).parent / "fixtures"
GOOD = str(FIXTURES / "good_wall_clock.py")
BAD = str(FIXTURES / "bad_wall_clock.py")


def test_exit_zero_on_clean(capsys):
    assert lint_main([GOOD]) == 0
    assert "no findings" in capsys.readouterr().out


def test_exit_one_on_findings(capsys):
    assert lint_main([BAD]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "bad_wall_clock.py" in out


def test_exit_two_on_unknown_rule(capsys):
    assert lint_main(["--select", "no-such-rule", GOOD]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_exit_two_on_missing_path(capsys):
    assert lint_main([str(FIXTURES / "does_not_exist.py")]) == 2
    assert "error:" in capsys.readouterr().err


def test_json_format_parses_and_carries_findings(capsys):
    assert lint_main(["--format", "json", BAD]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    assert payload["clean"] is False
    assert payload["baselined"] == 0
    assert payload["files_checked"] == 1
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"wall-clock"}
    first = payload["findings"][0]
    assert set(first) >= {
        "path", "line", "col", "rule", "message", "severity", "origin",
    }
    assert first["severity"] == "error"
    assert first["origin"] == "per-file"


def test_rules_listing_names_every_rule(capsys):
    assert lint_main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
    for rule in all_program_rules():
        assert rule.id in out
    # Rule provenance is part of the listing.
    assert "[per-file]" in out and "[program]" in out


def test_no_program_flag_accepted(capsys):
    bad_pkg = str(FIXTURES / "program" / "proto_bad")
    assert lint_main(["--select", "protocol-flow", bad_pkg]) == 1
    capsys.readouterr()
    assert lint_main(["--no-program", "--select", "protocol-flow",
                      bad_pkg]) == 0


def test_program_rule_ids_valid_in_select_and_ignore(capsys):
    assert lint_main(["--select", "unreachable-public", GOOD]) == 0
    assert lint_main(["--ignore", "protocol-flow", GOOD]) == 0


def test_comma_separated_select(capsys):
    assert lint_main(["--select", "wall-clock,global-random", BAD]) == 1
    assert lint_main(["--select", "global-random", BAD]) == 0


def test_repro_lint_subcommand(capsys):
    assert repro_main(["lint", GOOD]) == 0
    assert repro_main(["lint", BAD]) == 1
    assert repro_main(["lint", "--select", "no-such-rule", GOOD]) == 2
    err = capsys.readouterr().err
    assert "unknown lint rule" in err


def test_repro_lint_subcommand_json(capsys):
    assert repro_main(["lint", "--format", "json", GOOD]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
