"""Each program rule against its good/bad fixture pair: every bad package
produces exactly the expected findings, every good package (a structural
near-miss of the bad one) stays silent, and the engine-level knobs
(``--no-program``, inline suppression, reference-corpus attribution) hold.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.engine import _parse_file
from repro.lint.program.model import build_project_model
from repro.lint.program.rules.exports import UnreachablePublicRule

FIXTURES = Path(__file__).parent / "fixtures" / "program"


def _lint(package: str, rule: str, **kwargs):
    return lint_paths(paths=[FIXTURES / package], select=[rule], **kwargs)


CASES = [
    # (package, rule, #errors, #warnings)
    ("reach_bad", "async-blocking-reach", 2, 0),
    ("reach_good", "async-blocking-reach", 0, 0),
    ("ambient_bad", "ambient-state-reach", 2, 0),
    ("ambient_good", "ambient-state-reach", 0, 0),
    ("proto_bad", "protocol-flow", 2, 3),
    ("proto_good", "protocol-flow", 0, 0),
    ("reg_bad", "registry-flow", 4, 0),
    ("reg_good", "registry-flow", 0, 0),
    ("exports_bad", "unreachable-public", 2, 1),
    ("exports_good", "unreachable-public", 0, 0),
]


@pytest.mark.parametrize("package,rule,errors,warnings", CASES)
def test_fixture_pair_counts(package, rule, errors, warnings):
    result = _lint(package, rule)
    by_severity = {"error": 0, "warning": 0}
    for finding in result.findings:
        assert finding.rule == rule
        assert finding.origin == "program"
        by_severity[finding.severity] += 1
    assert (by_severity["error"], by_severity["warning"]) == (
        errors, warnings
    ), "\n".join(f.render() for f in result.findings)


def test_async_blocking_reach_reports_the_chain():
    rendered = [
        f.render() for f in _lint("reach_bad", "async-blocking-reach").findings
    ]
    assert any(
        "reach_bad.disk.flush -> reach_bad.disk._write -> time.sleep()" in r
        for r in rendered
    )
    # The scheduled-callback edge is reported as a reference, not a call.
    assert any("schedules/references" in r for r in rendered)


def test_ambient_reach_names_both_ambient_sources():
    messages = " ".join(
        f.message for f in _lint("ambient_bad", "ambient-state-reach").findings
    )
    assert "time.time()" in messages and "random.random()" in messages


def test_protocol_flow_covers_all_three_spaces():
    findings = _lint("proto_bad", "protocol-flow").findings
    messages = [f.message for f in findings]
    assert any("message kind 'fixture-ping' is produced" in m for m in messages)
    assert any("service op 'fixture-get' is produced" in m for m in messages)
    assert any("message kind 'fixture-pong'" in m for m in messages)
    assert any("service op 'fixture-put'" in m for m in messages)
    assert any("reply status 'fixture-stale'" in m for m in messages)


def test_registry_flow_skips_literals_and_dynamics():
    # reg_good contains a literal kind and a dynamic kind at record sites;
    # both are out of this rule's jurisdiction (per-file rule / runtime).
    assert _lint("reg_good", "registry-flow").findings == []


def test_unreachable_public_split_between_layers():
    findings = _lint("exports_bad", "unreachable-public").findings
    by_rule = {(Path(f.path).name, f.severity) for f in findings}
    # ghost: undefined on the package surface; phantom: undefined in a
    # submodule (the error applies everywhere); dead_fn: unused, flagged
    # only on the package surface.
    assert ("__init__.py", "error") in by_rule
    assert ("impl.py", "error") in by_rule
    assert ("__init__.py", "warning") in by_rule


def test_no_program_flag_disables_the_pass():
    assert _lint("proto_bad", "protocol-flow", program=False).findings == []


def test_program_findings_respect_inline_suppressions(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        "from .impl import used\n\n"
        '__all__ = ["used", "ghost"]  # lint: ignore[unreachable-public]\n'
    )
    (pkg / "impl.py").write_text("def used():\n    return 1\n")
    (pkg / "consumer.py").write_text(
        "from .impl import used\n\n\ndef run():\n    return used()\n"
    )
    result = lint_paths(paths=[pkg], select=["unreachable-public"])
    assert result.findings == []


def test_reference_corpus_never_receives_findings():
    # exports_bad as reference corpus: its ghost export must not surface
    # when the target is the clean package.
    targets = [
        _parse_file(p)[0]
        for p in sorted((FIXTURES / "exports_good").rglob("*.py"))
    ]
    refs = [
        _parse_file(p)[0]
        for p in sorted((FIXTURES / "exports_bad").rglob("*.py"))
    ]
    model = build_project_model(targets, refs)
    assert list(UnreachablePublicRule().check(model)) == []


def test_program_rules_run_by_default_on_fixtures():
    result = lint_paths(paths=[FIXTURES / "proto_bad"])
    assert any(f.rule == "protocol-flow" for f in result.findings)
