"""The unified ClusterAPI: protocol conformance, shared verdicts, and the
virtual-clock LocalCluster driven through the same harness a
ProcessCluster uses."""

import asyncio
import inspect

import pytest

from repro.cluster import (
    FAULT_VERBS,
    ClusterAPI,
    LocalCluster,
    ProcessCluster,
    rsm_verdicts,
    standard_verdicts,
    verdicts_ok,
)
from repro.errors import ConfigurationError
from repro.net import FaultPlan
from repro.obs.sinks import MemorySink

SIM_SCALE = dict(period=5.0, initial_timeout=12.0, timeout_increment=5.0)


async def run_scenario(cluster, crash_pid, crash_at):
    """The one harness both cluster types satisfy (ISSUE acceptance)."""
    cluster.crash(crash_pid, at=crash_at)
    await cluster.start()
    quiescent = await cluster.wait_quiescent()
    await cluster.stop()
    return quiescent, cluster.traces(), cluster.verdicts()


def make_virtual_cluster(**overrides):
    settings = dict(n=3, clock="virtual", duration=400.0)
    settings.update(overrides)
    cluster = LocalCluster(**settings)
    cluster.deploy_standard_stack(propose_after=100.0, **SIM_SCALE)
    return cluster


# ----------------------------------------------------------- the protocol
def test_both_implementations_satisfy_cluster_api():
    local = LocalCluster(n=2, clock="virtual")
    proc = ProcessCluster(n=2)
    assert isinstance(local, ClusterAPI)
    assert isinstance(proc, ClusterAPI)


def test_cluster_api_rejects_partial_implementations():
    class NotACluster:
        n = 3

        async def start(self):  # missing the rest of the surface
            pass

    assert not isinstance(NotACluster(), ClusterAPI)


@pytest.mark.parametrize("verb", FAULT_VERBS)
def test_fault_verb_surface_is_identical_across_substrates(verb):
    """The scenario layer drives either substrate blindly, so every fault
    verb must exist on both with the same parameter list — including the
    trailing ``at=None`` that makes each one schedulable."""

    def shape(cluster):
        method = getattr(cluster, verb)
        assert callable(method)
        return [
            (p.name, p.default)
            for p in inspect.signature(method).parameters.values()
        ]

    local = shape(LocalCluster(n=2, clock="virtual"))
    proc = shape(ProcessCluster(n=2))
    assert local == proc
    assert local[-1] == ("at", None)


def test_fault_plan_ctor_kwarg_is_deprecated():
    plan = FaultPlan(2)
    with pytest.warns(DeprecationWarning, match="fault_plan"):
        cluster = LocalCluster(n=2, clock="virtual", fault_plan=plan)
    # The legacy path still works while deprecated.
    assert cluster.plan is plan


# ------------------------------------------ LocalCluster under the harness
def test_virtual_local_cluster_through_unified_harness():
    cluster = make_virtual_cluster()
    quiescent, trace, verdicts = asyncio.run(
        run_scenario(cluster, crash_pid=0, crash_at=60.0)
    )
    assert quiescent
    assert isinstance(trace, MemorySink)
    assert cluster.correct_pids == frozenset({1, 2})
    assert trace.count("crash") == 1
    assert verdicts_ok(verdicts), verdicts
    # The verdict keys are the shared postmortem's flat namespace.
    assert {"fd.completeness", "fd.omega", "consensus.termination"} <= set(
        verdicts
    )


def test_crash_now_before_start_kills_at_time_zero():
    cluster = make_virtual_cluster()
    cluster.crash(0)  # at=None before start: dead from the very beginning
    asyncio.run(run_scenario(cluster, crash_pid=1, crash_at=60.0))
    assert cluster.correct_pids == frozenset({2})


def test_crash_validates_pid():
    cluster = make_virtual_cluster()
    with pytest.raises(ConfigurationError):
        cluster.crash(99)


def test_wait_quiescent_without_duration_needs_timeout():
    cluster = LocalCluster(n=2)  # wall clock, no duration

    async def drive():
        await cluster.start()
        try:
            with pytest.raises(ConfigurationError):
                await cluster.wait_quiescent()
        finally:
            await cluster.stop()

    asyncio.run(drive())


def test_wait_quiescent_all_crashed():
    cluster = LocalCluster(n=2, clock="virtual")
    cluster.crash(0, at=10.0)
    cluster.crash(1, at=20.0)

    async def drive():
        await cluster.start()
        return await cluster.wait_quiescent()

    assert asyncio.run(drive()) is True
    assert cluster.correct_pids == frozenset()


# ------------------------------------------------------- shared postmortem
def test_standard_verdicts_accepts_any_trace_source(tmp_path):
    cluster = make_virtual_cluster(trace_out=str(tmp_path / "trace.jsonl"))
    asyncio.run(run_scenario(cluster, crash_pid=0, crash_at=60.0))
    live = standard_verdicts(cluster.trace, cluster.correct_pids)
    shipped = standard_verdicts(
        str(tmp_path / "trace.jsonl"), cluster.correct_pids
    )
    assert {k: bool(v) for k, v in live.items()} == {
        k: bool(v) for k, v in shipped.items()
    }
    assert verdicts_ok(live)


def test_verdicts_ok_fails_on_any_violation():
    assert verdicts_ok({"a": True, "b": 1})
    assert not verdicts_ok({"a": True, "b": False})
    assert verdicts_ok({})


# -------------------------------------------------- rsm log-level verdicts
def applied(*events):
    """A synthetic trace of ``apply`` events: (time, pid, slot, command)."""
    sink = MemorySink()
    for time, pid, slot, command in events:
        sink.record(time, "apply", pid, slot=slot, command=command)
    return sink


def rsm_only(trace, correct):
    verdicts = rsm_verdicts(trace, frozenset(correct))
    return {k: v for k, v in verdicts.items() if k.startswith("rsm.")}


def test_rsm_verdicts_clean_sparse_log():
    # NOOP slots record no apply, so slot sets are sparse (0, 2) — that
    # must not read as a prefix violation.
    trace = applied(
        (1.0, 0, 0, "a"), (2.0, 0, 2, "b"),
        (1.1, 1, 0, "a"), (2.1, 1, 2, "b"),
    )
    assert rsm_only(trace, {0, 1}) == {
        "rsm.agreement": True, "rsm.prefix": True, "rsm.progress": True,
    }


def test_rsm_agreement_catches_diverging_slots():
    trace = applied((1.0, 0, 0, "a"), (1.1, 1, 0, "b"))
    assert rsm_only(trace, {0, 1})["rsm.agreement"] is False


def test_rsm_prefix_allows_lag_but_not_gaps():
    # p1 stopping early (frontier 0) is fine...
    lagging = applied(
        (1.0, 0, 0, "a"), (2.0, 0, 2, "b"), (1.1, 1, 0, "a"),
    )
    assert rsm_only(lagging, {0, 1})["rsm.prefix"] is True
    # ...but p1 applying slot 2 while missing slot 0 is a hole below its
    # own frontier.
    holed = applied(
        (1.0, 0, 0, "a"), (2.0, 0, 2, "b"), (2.1, 1, 2, "b"),
    )
    assert rsm_only(holed, {0, 1})["rsm.prefix"] is False


def test_rsm_progress_needs_every_correct_replica():
    one_sided = applied((1.0, 0, 0, "a"))
    assert rsm_only(one_sided, {0, 1})["rsm.progress"] is False
    # An entirely empty log is vacuous progress (nothing was decided).
    assert rsm_only(applied(), {0, 1})["rsm.progress"] is True
