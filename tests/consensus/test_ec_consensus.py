"""Tests for the ◇C-consensus algorithm (Figs. 3–4)."""

import pytest

from repro.analysis import (
    extract_outcome,
    max_phases_per_round,
    messages_per_round,
    require_consensus,
    rounds_after_system,
)
from repro.errors import ProtocolError
from repro.fd import EVENTUALLY_CONSISTENT
from repro.sim import crash_at
from repro.workloads import (
    consensus_run,
    nice_run,
    stabilizing_run,
    theorem3_run,
)


def assert_correct(run):
    outcome = extract_outcome(run.world.trace, run.algo)
    require_consensus(outcome, run.world.correct_pids)
    return outcome


class TestNiceRuns:
    def test_decides_in_one_round(self):
        run = nice_run("ec", n=5, seed=0).run(until=300.0)
        assert run.decided
        outcome = assert_correct(run)
        assert all(r == 1 for r in outcome.decision_rounds.values())

    def test_five_phases_per_round(self):
        run = nice_run("ec", n=5, seed=0).run(until=300.0)
        assert max_phases_per_round(run.world.trace, "ec") == 5

    def test_message_complexity_4n(self):
        for n in (4, 5, 8):
            run = nice_run("ec", n=n, seed=1).run(until=300.0)
            per_round = messages_per_round(run.world.trace)
            assert per_round[1] == 4 * (n - 1)

    def test_decision_value_is_a_proposal(self):
        run = nice_run("ec", n=5, seed=2,
                       values=["a", "b", "c", "d", "e"]).run(until=300.0)
        assert run.decisions[0] in list("abcde")

    @pytest.mark.parametrize("n", [3, 4, 5, 7, 10])
    def test_various_system_sizes(self, n):
        run = nice_run("ec", n=n, seed=3).run(until=500.0)
        assert run.decided
        assert_correct(run)


class TestFaultTolerance:
    def test_minority_crashes_before_start(self):
        run = consensus_run(
            "ec", n=5, seed=4, pre_behavior="ideal",
            crashes=crash_at((1, 0.5), (3, 0.5)),
        ).run(until=500.0)
        assert run.decided
        assert_correct(run)

    def test_leader_crash_mid_run(self):
        # Leader (pid 0) crashes; the oracle re-elects; consensus completes.
        run = consensus_run(
            "ec", n=5, seed=5, pre_behavior="ideal",
            crashes=crash_at((0, 3.0)),
        ).run(until=800.0)
        assert run.decided
        assert_correct(run)

    def test_cascading_crashes(self):
        run = consensus_run(
            "ec", n=7, seed=6, pre_behavior="ideal",
            crashes=crash_at((0, 2.0), (1, 6.0), (2, 10.0)),
        ).run(until=1500.0)
        assert run.decided
        assert_correct(run)

    @pytest.mark.parametrize("seed", range(8))
    def test_erratic_detector_then_stability(self, seed):
        run = stabilizing_run("ec", n=5, seed=seed,
                              stabilize_time=120.0).run(until=3000.0)
        assert run.decided
        assert_correct(run)

    def test_erratic_detector_with_crashes(self):
        run = consensus_run(
            "ec", n=7, seed=7, stabilize_time=150.0, pre_behavior="erratic",
            crashes=crash_at((2, 40.0), (5, 90.0)),
        ).run(until=3000.0)
        assert run.decided
        assert_correct(run)


class TestLeaderElectionAdvantage:
    def test_decides_one_round_after_stabilization(self):
        run = theorem3_run("ec", n=8, leader=5, stabilize_time=200.0)
        run.run(until=3000.0)
        assert run.decided
        # The first round started entirely after stabilization decides: the
        # in-flight rounds drain, the leader coordinates the next one.
        extra = rounds_after_system(run.world.trace, 200.0, "ec")
        assert extra == 1, extra

    def test_slandered_majority_does_not_block(self):
        """◇C's accuracy means only the leader needs to be clean; everyone
        else may stay suspected forever."""
        slander = frozenset({1, 2, 3})
        run = consensus_run(
            "ec", n=7, seed=8, pre_behavior="ideal", leader=0,
            slander=slander,
        ).run(until=800.0)
        assert run.decided
        assert_correct(run)


class TestNackTolerance:
    def test_decides_despite_nacks(self):
        """E7: a majority of acks decides even when nacks are present.

        Processes that (falsely, permanently) suspect the coordinator nack
        in Phase 3; the coordinator must still decide because it waits for
        every unsuspected process — collecting a majority of positives.
        """
        # 2 of 7 processes slander the leader... not possible under ◇C
        # (trusted is never suspected *at the same process*).  Instead the
        # leader's ◇C suspects nobody while 3 processes have everyone-else
        # slandered, nacking every non-leader coordinator.  Simplest
        # faithful construction: leader 0 clean; processes 5, 6 slandered by
        # everyone, so their acks still count while others' suspicion of
        # them lets the coordinator proceed without them.
        run = consensus_run(
            "ec", n=7, seed=9, pre_behavior="ideal", leader=0,
            slander=frozenset({5, 6}),
        ).run(until=800.0)
        assert run.decided
        assert_correct(run)


class TestMergedPhase01Variant:
    def test_decides_and_agrees(self):
        run = nice_run("ec", n=5, seed=10,
                       merged_phase01=True).run(until=500.0)
        assert run.decided
        assert_correct(run)

    def test_four_phases_but_quadratic_messages(self):
        n = 6
        run = nice_run("ec", n=n, seed=11,
                       merged_phase01=True).run(until=500.0)
        assert max_phases_per_round(run.world.trace, "ec") == 4
        per_round = messages_per_round(run.world.trace)
        # Phase 0+1 alone costs n(n-1): quadratic.
        assert per_round[1] >= n * (n - 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_merged_with_erratic_prefix(self, seed):
        run = stabilizing_run(
            "ec", n=5, seed=seed, stabilize_time=100.0, merged_phase01=True
        ).run(until=3000.0)
        assert run.decided
        assert_correct(run)


class TestAPI:
    def test_double_propose_rejected(self):
        run = nice_run("ec", n=3, seed=0)
        with pytest.raises(ProtocolError):
            run.protocols[0].propose("again")

    def test_on_decide_callback(self):
        run = nice_run("ec", n=3, seed=0)
        got = []
        run.protocols[2].on_decide(got.append)
        run.run(until=300.0)
        assert got == [run.protocols[2].decision]

    def test_decision_metadata(self):
        run = nice_run("ec", n=3, seed=0).run(until=300.0)
        p = run.protocols[0]
        assert p.decided
        assert p.decision_round == 1
        assert p.decision_time is not None
