"""Tests for the replicated state machine (repeated consensus)."""

import pytest

from repro.consensus import NOOP, ReplicatedStateMachine
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay, ReliableLink, World


def build(n=4, seed=0, stabilize=0.0):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    rsms = []
    for pid in world.pids:
        fd = world.attach(
            pid,
            OracleFailureDetector(
                EVENTUALLY_CONSISTENT,
                OracleConfig(
                    stabilize_time=stabilize,
                    pre_behavior="erratic" if stabilize else "ideal",
                ),
                channel="fd",
            ),
        )
        rsms.append(world.attach(pid, ReplicatedStateMachine(fd)))
    world.start()
    return world, rsms


class TestReplicatedLog:
    def test_single_command_applied_everywhere(self):
        world, rsms = build()
        rsms[0].submit({"op": "set", "k": "x", "v": 1})
        world.run(until=400.0)
        for rsm in rsms:
            assert rsm.log == [{"op": "set", "k": "x", "v": 1}]

    def test_logs_identical_across_replicas(self):
        world, rsms = build(seed=1)
        rsms[0].submit("a")
        world.scheduler.schedule(15.0, lambda: rsms[1].submit("b"))
        world.scheduler.schedule(30.0, lambda: rsms[2].submit("c"))
        world.run(until=900.0)
        logs = [tuple(rsm.log) for rsm in rsms]
        assert len(set(logs)) == 1
        assert sorted(logs[0]) == ["a", "b", "c"]

    def test_no_duplicate_application(self):
        world, rsms = build(seed=2)
        rsms[0].submit("x")
        rsms[0].submit("x")  # same payload, distinct command ids
        world.run(until=600.0)
        assert rsms[1].log.count("x") == 2  # two submissions, two applies

    def test_commands_survive_replica_crash(self):
        world, rsms = build(n=5, seed=3)
        rsms[1].submit("persisted")
        world.scheduler.schedule(5.0, lambda: world.crash(1))
        world.run(until=900.0)
        for rsm in rsms:
            if rsm.pid != 1:
                assert "persisted" in rsm.log

    def test_apply_callbacks_in_slot_order(self):
        world, rsms = build(seed=4)
        applied = []
        rsms[3].on_apply(lambda slot, cmd: applied.append((slot, cmd)))
        rsms[0].submit("first")
        world.scheduler.schedule(20.0, lambda: rsms[0].submit("second"))
        world.run(until=900.0)
        slots = [slot for slot, _ in applied]
        assert slots == sorted(slots)
        assert [cmd for _, cmd in applied] == ["first", "second"]

    def test_progress_with_erratic_detector(self):
        world, rsms = build(seed=5, stabilize=80.0)
        rsms[0].submit("eventually")
        world.run(until=3000.0)
        assert all("eventually" in rsm.log for rsm in rsms)

    def test_noop_slots_not_logged(self):
        world, rsms = build(seed=6)
        world.run(until=200.0)  # nobody submits: slots decide NOOP
        assert all(rsm.log == [] for rsm in rsms)
        assert all(rsm.current_slot >= 1 for rsm in rsms)
