"""Tests for Total-Order (atomic) Broadcast."""

import pytest

from repro.consensus import TotalOrderBroadcast
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay, ReliableLink, World


def build(n=4, seed=0, stabilize=0.0, **tob_kwargs):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    tobs = []
    for pid in world.pids:
        fd = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT,
            OracleConfig(
                pre_behavior="erratic" if stabilize else "ideal",
                stabilize_time=stabilize,
            ),
        ))
        tobs.append(world.attach(pid, TotalOrderBroadcast(fd, **tob_kwargs)))
    world.start()
    return world, tobs


class TestTotalOrder:
    def test_single_broadcast_delivered_everywhere(self):
        world, tobs = build()
        tobs[1].to_broadcast("hello")
        world.run(until=400.0)
        for tob in tobs:
            assert tob.delivered == [(1, "hello")]

    def test_same_order_at_every_process(self):
        world, tobs = build(seed=1)
        tobs[0].to_broadcast("a")
        world.scheduler.schedule_at(12.0, lambda: tobs[2].to_broadcast("b"))
        world.scheduler.schedule_at(25.0, lambda: tobs[3].to_broadcast("c"))
        world.run(until=900.0)
        sequences = {tuple(t.delivered) for t in tobs}
        assert len(sequences) == 1
        assert {m for _, m in tobs[0].delivered} == {"a", "b", "c"}

    def test_prefix_property_mid_run(self):
        """At any instant, delivery sequences are prefix-comparable."""
        world, tobs = build(seed=2)
        for i in range(4):
            world.scheduler.schedule_at(
                5.0 + 10 * i, lambda i=i: tobs[i].to_broadcast(f"m{i}")
            )
        for checkpoint in (30.0, 60.0, 120.0, 600.0):
            world.run(until=checkpoint)
            seqs = sorted((tuple(t.delivered) for t in tobs), key=len)
            for shorter, longer in zip(seqs, seqs[1:]):
                assert longer[: len(shorter)] == shorter

    def test_total_order_holds_with_batched_log(self):
        # The batching/pipelining knobs forward to the underlying log;
        # all four TO-broadcast properties must survive them.
        world, tobs = build(seed=7, max_batch=4, pipeline_depth=2)
        for i in range(6):
            tobs[i % 4].to_broadcast(f"b{i}")
        world.run(until=900.0)
        sequences = {tuple(t.delivered) for t in tobs}
        assert len(sequences) == 1
        assert {m for _, m in tobs[0].delivered} == {
            f"b{i}" for i in range(6)
        }

    def test_callbacks_fire_in_order(self):
        world, tobs = build(seed=3)
        got = []
        tobs[2].on_to_deliver(lambda origin, m: got.append((origin, m)))
        tobs[0].to_broadcast("x")
        world.scheduler.schedule_at(15.0, lambda: tobs[1].to_broadcast("y"))
        world.run(until=600.0)
        assert got == tobs[2].delivered

    def test_order_preserved_under_crash(self):
        world, tobs = build(n=5, seed=4)
        tobs[0].to_broadcast("survives")
        world.scheduler.schedule_at(8.0, lambda: world.crash(1))
        world.scheduler.schedule_at(20.0, lambda: tobs[2].to_broadcast("later"))
        world.run(until=900.0)
        live = [t for t in tobs if not t.crashed]
        sequences = {tuple(t.delivered) for t in live}
        assert len(sequences) == 1
        assert [m for _, m in live[0].delivered] == ["survives", "later"]

    def test_progress_with_erratic_detector(self):
        world, tobs = build(seed=5, stabilize=80.0)
        tobs[3].to_broadcast("eventually-ordered")
        world.run(until=3000.0)
        assert all(
            ("eventually-ordered" in [m for _, m in t.delivered])
            for t in tobs
        )


class TestReport:
    def test_render_report_with_results(self, tmp_path):
        from repro.analysis import render_report

        (tmp_path / "e1_class_properties.txt").write_text("TABLE-E1\n")
        (tmp_path / "zz_custom.txt").write_text("TABLE-CUSTOM\n")
        out = render_report(tmp_path)
        assert "TABLE-E1" in out
        assert "TABLE-CUSTOM" in out
        assert out.index("TABLE-E1") < out.index("TABLE-CUSTOM")

    def test_render_report_empty(self, tmp_path):
        from repro.analysis import render_report

        out = render_report(tmp_path / "nonexistent")
        assert "pytest benchmarks/" in out
