"""Batched slots and pipelined instances in the replicated state machine.

Three layers of pinning:

* sim runs — many commands ride few slots, logs stay identical across
  replicas, and a mid-batch coordinator crash loses nothing and
  duplicates nothing;
* unit drives of the apply path — out-of-order decides buffer and apply
  in slot order; a decided batch carrying the same command id twice
  applies it exactly once;
* parity — ``max_batch=1, pipeline_depth=1`` reproduces the historical
  one-command-per-slot machine: bare commands on the wire, no batch
  trace events, every ``apply`` at index 0.
"""

import pytest

from repro.consensus import BATCH, NOOP, ReplicatedStateMachine
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay, ReliableLink, World


def build(n=4, seed=0, stabilize=0.0, **rsm_kwargs):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    rsms = []
    for pid in world.pids:
        fd = world.attach(
            pid,
            OracleFailureDetector(
                EVENTUALLY_CONSISTENT,
                OracleConfig(
                    stabilize_time=stabilize,
                    pre_behavior="erratic" if stabilize else "ideal",
                ),
                channel="fd",
            ),
        )
        rsms.append(
            world.attach(pid, ReplicatedStateMachine(fd, **rsm_kwargs))
        )
    world.start()
    return world, rsms


# ------------------------------------------------------------------ batching
class TestBatchedSlots:
    def test_many_commands_few_slots(self):
        world, rsms = build(seed=10, max_batch=8, pipeline_depth=2)
        for i in range(16):
            rsms[0].submit(f"c{i}")
        world.run(until=900.0)
        logs = [tuple(rsm.log) for rsm in rsms]
        assert len(set(logs)) == 1
        assert sorted(logs[0]) == sorted(f"c{i}" for i in range(16))
        # 16 commands submitted before the first decide must not take 16
        # slots: batching packs them into the pipeline window.
        command_slots = {
            e.get("slot") for e in world.trace.select(kind="apply", pid=0)
        }
        assert len(command_slots) < 16
        sizes = [
            e.get("size")
            for e in world.trace.select(kind="rsm.batch_proposed", pid=0)
        ]
        assert sizes and max(sizes) > 1

    def test_batch_applied_event_shape(self):
        world, rsms = build(seed=11, max_batch=4)
        for i in range(4):
            rsms[0].submit(i)
        world.run(until=900.0)
        applied = world.trace.select(kind="rsm.batch_applied", pid=1)
        assert applied
        assert all(e.get("duplicates") == 0 for e in applied)
        assert sum(e.get("size") for e in applied) == 4

    def test_validation(self):
        from repro.errors import ConfigurationError

        world = World(n=1, seed=0)
        fd = world.attach(
            0,
            OracleFailureDetector(
                EVENTUALLY_CONSISTENT, OracleConfig(), channel="fd"
            ),
        )
        with pytest.raises(ConfigurationError):
            ReplicatedStateMachine(fd, max_batch=0)
        with pytest.raises(ConfigurationError):
            ReplicatedStateMachine(fd, pipeline_depth=0)

    def test_coordinator_crash_mid_batch_exactly_once(self):
        # Commands in flight when the coordinator dies must be re-proposed
        # by a survivor into a later slot — applied exactly once, never
        # lost, never doubled.
        world, rsms = build(
            n=5, seed=12, max_batch=4, pipeline_depth=2, stabilize=40.0
        )
        for i in range(8):
            rsms[1].submit(f"k{i}")
        world.scheduler.schedule(3.0, lambda: world.crash(0))
        world.run(until=3000.0)
        survivors = [rsm for rsm in rsms if rsm.pid != 0]
        logs = [tuple(rsm.log) for rsm in survivors]
        assert len(set(logs)) == 1
        for i in range(8):
            assert logs[0].count(f"k{i}") == 1


# ------------------------------------------------------- apply-path internals
def _bare_rsm(max_batch=8, pipeline_depth=4):
    world = World(n=1, seed=0)
    fd = world.attach(
        0,
        OracleFailureDetector(
            EVENTUALLY_CONSISTENT, OracleConfig(), channel="fd"
        ),
    )
    rsm = world.attach(
        0,
        ReplicatedStateMachine(
            fd, max_batch=max_batch, pipeline_depth=pipeline_depth
        ),
    )
    return world, rsm


class TestApplyPath:
    def test_out_of_order_decides_apply_in_slot_order(self):
        world, rsm = _bare_rsm()
        applied = []
        rsm.on_apply(lambda slot, cmd: applied.append((slot, cmd)))
        # Slot 1 decides before slot 0: nothing may apply until 0 lands.
        rsm._on_slot_decided(1, (BATCH, ((0, 1, "b"),)))
        assert applied == [] and rsm.log == []
        rsm._on_slot_decided(0, (BATCH, ((0, 0, "a"),)))
        assert applied == [(0, "a"), (1, "b")]
        assert rsm.log == ["a", "b"]
        assert rsm.current_slot == 2

    def test_duplicate_cid_across_slots_applies_once(self):
        # A command re-proposed into a second slot (retry race) applies on
        # its first decide only.
        world, rsm = _bare_rsm()
        rsm._on_slot_decided(0, (BATCH, ((0, 0, "x"),)))
        rsm._on_slot_decided(1, (BATCH, ((0, 0, "x"), (0, 1, "y"))))
        assert rsm.log == ["x", "y"]
        dup = [
            e for e in world.trace.select(kind="rsm.batch_applied")
            if e.get("slot") == 1
        ]
        assert dup and dup[0].get("duplicates") == 1

    def test_duplicate_cid_inside_one_batch_applies_once(self):
        world, rsm = _bare_rsm()
        applied = []
        rsm.on_apply(lambda slot, cmd: applied.append(cmd))
        rsm._on_slot_decided(
            0, (BATCH, ((0, 0, "x"), (0, 0, "x"), (0, 1, "y")))
        )
        assert rsm.log == ["x", "y"]
        assert applied == ["x", "y"]

    def test_apply_indexes_are_contiguous_per_slot(self):
        world, rsm = _bare_rsm()
        rsm._on_slot_decided(
            0, (BATCH, ((0, 0, "a"), (0, 1, "b"), (0, 2, "c")))
        )
        events = world.trace.select(kind="apply", pid=0)
        assert [e.get("index") for e in events] == [0, 1, 2]
        assert all(e.get("slot") == 0 for e in events)

    def test_noop_and_bare_command_shapes_still_decode(self):
        world, rsm = _bare_rsm()
        rsm._on_slot_decided(0, NOOP)
        rsm._on_slot_decided(1, (0, 0, "bare"))
        assert rsm.log == ["bare"]
        # NOOP slots and bare commands never emit batch events.
        assert world.trace.select(kind="rsm.batch_applied") == []


# -------------------------------------------------------------------- parity
class TestUnbatchedParity:
    def test_max_batch_1_reproduces_legacy_shape(self):
        # The historical machine: one bare command per slot, no batch
        # markers anywhere — trace-compatible with pre-batching runs.
        world, rsms = build(seed=13, max_batch=1, pipeline_depth=1)
        for i in range(3):
            rsms[0].submit(f"p{i}")
        world.run(until=900.0)
        logs = [tuple(rsm.log) for rsm in rsms]
        assert len(set(logs)) == 1
        assert sorted(logs[0]) == ["p0", "p1", "p2"]
        assert world.trace.select(kind="rsm.batch_proposed") == []
        assert world.trace.select(kind="rsm.batch_applied") == []
        applies = world.trace.select(kind="apply")
        assert applies and all(e.get("index") == 0 for e in applies)

    def test_same_seed_same_trace_batched(self):
        # Batching stays deterministic in the simulator: identical runs
        # produce identical apply streams.
        def run_once():
            world, rsms = build(seed=14, max_batch=4, pipeline_depth=2)
            for i in range(6):
                rsms[0].submit(i)
            world.run(until=900.0)
            return [
                (e.pid, e.get("slot"), e.get("index"), e.get("command"))
                for e in world.trace.select(kind="apply")
            ]

        assert run_once() == run_once()
