"""Directed unit tests of consensus-protocol internals.

These poke at the mechanisms the integration suites exercise only
indirectly: the NULL sentinel, phase-mark deduplication, decision
idempotence/conflict detection, Fig. 4 late-coordinator bookkeeping, and
round-state pruning.
"""

import pytest

from repro.broadcast import ReliableBroadcast
from repro.consensus import ECConsensus, NULL
from repro.consensus.ec_consensus import _NullEstimate
from repro.errors import ProtocolError
from repro.fd import (
    EVENTUALLY_CONSISTENT,
    OracleConfig,
    OracleFailureDetector,
)
from repro.sim import FixedDelay, ReliableLink, World


def make_world(n=5, seed=0, pre="ideal", stabilize=0.0):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    protos = []
    for pid in world.pids:
        fd = world.attach(pid, OracleFailureDetector(
            EVENTUALLY_CONSISTENT,
            OracleConfig(pre_behavior=pre, stabilize_time=stabilize),
        ))
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, ECConsensus(fd, rb)))
    world.start()
    return world, protos


class TestNullSentinel:
    def test_singleton(self):
        assert _NullEstimate() is NULL

    def test_distinct_from_none(self):
        assert NULL is not None
        assert NULL != None  # noqa: E711

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_none_is_a_valid_proposal(self):
        world, protos = make_world(n=3, seed=1)
        for p in protos:
            p.propose(None)
        world.run(until=300.0)
        assert all(p.decided and p.decision is None for p in protos)


class TestDecisionDiscipline:
    def test_decide_is_idempotent(self):
        world, protos = make_world(n=3)
        p = protos[0]
        p._decide("v", round=1)
        p._decide("v", round=2)  # duplicate with same value: ignored
        assert p.decision_round == 1

    def test_conflicting_decide_raises(self):
        world, protos = make_world(n=3)
        p = protos[0]
        p._decide("v", round=1)
        with pytest.raises(ProtocolError):
            p._decide("w", round=2)

    def test_decide_trace_emitted_once(self):
        world, protos = make_world(n=3)
        for p in protos:
            p.propose(p.pid)
        world.run(until=300.0)
        for pid in world.pids:
            events = world.trace.select(kind="decide", pid=pid)
            assert len(events) == 1


class TestPhaseMarks:
    def test_consecutive_duplicates_collapsed(self):
        world, protos = make_world(n=3)
        p = protos[0]
        p.mark_phase(1, 0)
        p.mark_phase(1, 0)
        p.mark_phase(1, 1)
        events = world.trace.select(kind="phase", pid=0)
        assert [(e.get("round"), e.get("phase")) for e in events] == [
            (1, 0), (1, 1)
        ]


class TestLateCoordinatorBookkeeping:
    def test_null_estimate_sent_once_per_coordinator(self):
        world, protos = make_world(n=5)
        p = protos[0]
        p.propose("x")
        world.run(until=5.0)
        # Simulate duplicate announcements from a stale coordinator of a
        # past round; only one null estimate may go out.
        p.r = 10
        before = world.network.sent_by_channel.get("consensus", 0)
        p.on_message(3, ("COORD", 4))
        p.on_message(3, ("COORD", 4))
        after = world.network.sent_by_channel.get("consensus", 0)
        assert after - before == 1

    def test_late_nack_for_non_null_prop_of_old_round(self):
        world, protos = make_world(n=5)
        p = protos[0]
        p.propose("x")
        world.run(until=5.0)
        p.r = 10
        before = world.network.sent_by_channel.get("consensus", 0)
        p.on_message(3, ("PROP", 4, "some-value"))
        p.on_message(3, ("PROP", 4, "some-value"))  # duplicate: one nack
        after = world.network.sent_by_channel.get("consensus", 0)
        assert after - before == 1

    def test_null_prop_of_old_round_ignored(self):
        world, protos = make_world(n=5)
        p = protos[0]
        p.propose("x")
        world.run(until=5.0)
        p.r = 10
        before = world.network.sent_by_channel.get("consensus", 0)
        p.on_message(3, ("PROP", 4, NULL))
        after = world.network.sent_by_channel.get("consensus", 0)
        assert after == before


class TestPruning:
    def test_old_round_state_dropped(self):
        world, protos = make_world(n=5, pre="erratic", stabilize=150.0)
        for p in protos:
            p.propose(p.pid)
        world.run(until=1000.0)
        for p in protos:
            if not p.decided:
                continue
            # Nothing older than two rounds below the final round survives
            # (the run churned through many rounds before stabilizing).
            for store in (p._est_msgs, p._props, p._replies, p._coord_annc):
                stale = [r for r in store if r < p.r - 2]
                assert not stale, (p.pid, stale[:5], p.r)
