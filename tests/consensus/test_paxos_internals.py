"""Directed tests of Paxos acceptor/proposer mechanics."""

import pytest

from repro.broadcast import ReliableBroadcast
from repro.consensus import PaxosConsensus
from repro.fd import OMEGA, OracleConfig, OracleFailureDetector
from repro.sim import FixedDelay, ReliableLink, World


def build(n=3, seed=0, leader=None):
    world = World(n=n, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    protos = []
    for pid in world.pids:
        fd = world.attach(pid, OracleFailureDetector(
            OMEGA, OracleConfig(pre_behavior="ideal", leader=leader)))
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protos.append(world.attach(pid, PaxosConsensus(fd, rb)))
    world.start()
    return world, protos


class TestAcceptor:
    def test_promise_given_for_fresh_ballot(self, ):
        world, protos = build()
        acceptor = protos[1]
        acceptor._acceptor(0, "1A", ((1, 0),))
        assert acceptor._promised == (1, 0)

    def test_higher_ballot_supersedes(self):
        world, protos = build()
        acceptor = protos[1]
        acceptor._acceptor(0, "1A", ((1, 0),))
        acceptor._acceptor(2, "1A", ((2, 2),))
        assert acceptor._promised == (2, 2)

    def test_lower_ballot_preempted(self):
        world, protos = build()
        acceptor = protos[1]
        acceptor._acceptor(2, "1A", ((5, 2),))
        acceptor._acceptor(0, "1A", ((1, 0),))
        assert acceptor._promised == (5, 2)  # unchanged

    def test_accept_records_value(self):
        world, protos = build()
        acceptor = protos[1]
        acceptor._acceptor(0, "1A", ((1, 0),))
        acceptor._acceptor(0, "2A", ((1, 0), "v"))
        assert acceptor._accepted == ((1, 0), "v")

    def test_stale_accept_rejected(self):
        world, protos = build()
        acceptor = protos[1]
        acceptor._acceptor(2, "1A", ((5, 2),))
        acceptor._acceptor(0, "2A", ((1, 0), "v"))
        assert acceptor._accepted is None

    def test_ballot_ordering_by_pid_tiebreak(self):
        assert (1, 2) > (1, 0)
        assert (2, 0) > (1, 2)


class TestProposer:
    def test_only_self_trusting_process_proposes(self):
        world, protos = build(leader=1)
        for p in protos:
            p.propose(f"v{p.pid}")
        world.run(until=500.0)
        # The decided value must be the leader's own proposal (no prior
        # accepted values existed).
        assert all(p.decided for p in protos)
        assert protos[0].decision == "v1"

    def test_preemption_fast_forwards_attempt_counter(self):
        world, protos = build()
        proposer = protos[0]
        proposer._on_preempted((41, 2))
        assert proposer._attempt >= 41

    def test_chosen_value_recovered_from_promises(self):
        """A new proposer must adopt the highest previously accepted value
        — the Paxos safety core."""
        world, protos = build(leader=0)
        proposer = protos[0]
        proposer.propose("mine")
        proposer._ballot = (7, 0)
        proposer._phase2_sent = False
        proposer._promises = {}
        proposer._on_promise(1, (7, 0), ((3, 1), "theirs"))
        proposer._on_promise(2, (7, 0), None)
        # Majority of 3 reached with one prior accepted value.
        assert proposer._phase2_sent
        # The 2A message it broadcast must carry "theirs", not "mine";
        # verify via its own acceptor state after the loopback settles.
        world.run(until=50.0)
        assert all(p.decided and p.decision == "theirs" for p in protos)
