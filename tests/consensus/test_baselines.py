"""Tests for the baseline consensus algorithms (CT ◇S, MR Ω, Paxos)."""

import pytest

from repro.analysis import (
    extract_outcome,
    max_phases_per_round,
    messages_per_round,
    require_consensus,
)
from repro.errors import ConfigurationError
from repro.fd import OMEGA, OracleConfig, OracleFailureDetector
from repro.broadcast import ReliableBroadcast
from repro.consensus import MostefaouiRaynalConsensus
from repro.sim import World, crash_at
from repro.workloads import consensus_run, nice_run, stabilizing_run


def assert_correct(run):
    outcome = extract_outcome(run.world.trace, run.algo)
    require_consensus(outcome, run.world.correct_pids)
    return outcome


class TestChandraToueg:
    def test_nice_run_decides_round_one(self):
        run = nice_run("ct", n=5, seed=0).run(until=300.0)
        assert run.decided
        outcome = assert_correct(run)
        assert all(r == 1 for r in outcome.decision_rounds.values())

    def test_four_phases_per_round(self):
        run = nice_run("ct", n=5, seed=0).run(until=300.0)
        assert max_phases_per_round(run.world.trace, "ct") == 4

    def test_message_complexity_3n(self):
        for n in (4, 5, 8):
            run = nice_run("ct", n=n, seed=1).run(until=300.0)
            per_round = messages_per_round(run.world.trace)
            assert per_round[1] == 3 * (n - 1)

    def test_rotating_coordinator_order(self):
        run = nice_run("ct", n=5, seed=0)
        ct = run.protocols[0]
        assert [ct.coordinator_of(r) for r in (1, 2, 5, 6)] == [0, 1, 4, 0]

    def test_coordinator_crash_rotates_on(self):
        run = consensus_run(
            "ct", n=5, seed=2, pre_behavior="ideal",
            crashes=crash_at((0, 0.5)),
        ).run(until=800.0)
        assert run.decided
        outcome = assert_correct(run)
        # Round 1's coordinator crashed; decision must come later.
        assert all(r >= 2 for r in outcome.decision_rounds.values())

    @pytest.mark.parametrize("seed", range(5))
    def test_erratic_detector_then_stability(self, seed):
        run = stabilizing_run("ct", n=5, seed=seed,
                              stabilize_time=120.0).run(until=4000.0)
        assert run.decided
        assert_correct(run)

    def test_minority_crashes(self):
        run = consensus_run(
            "ct", n=7, seed=3, pre_behavior="ideal",
            crashes=crash_at((1, 5.0), (2, 9.0), (3, 13.0)),
        ).run(until=2000.0)
        assert run.decided
        assert_correct(run)


class TestMostefaouiRaynal:
    def test_nice_run_decides_round_one(self):
        run = nice_run("mr", n=5, seed=0).run(until=300.0)
        assert run.decided
        outcome = assert_correct(run)
        assert all(r == 1 for r in outcome.decision_rounds.values())

    def test_three_phases_per_round(self):
        run = nice_run("mr", n=5, seed=0).run(until=300.0)
        assert max_phases_per_round(run.world.trace, "mr") == 3

    def test_message_complexity_3n_squared(self):
        for n in (4, 5, 8):
            run = nice_run("mr", n=n, seed=1).run(until=300.0)
            per_round = messages_per_round(run.world.trace)
            assert per_round[1] == 3 * n * (n - 1)

    def test_rejects_bad_f(self):
        world = World(n=4, seed=0)
        fd = world.attach(0, OracleFailureDetector(OMEGA))
        rb = world.attach(0, ReliableBroadcast())
        world.attach(0, MostefaouiRaynalConsensus(fd, rb, f=2))
        with pytest.raises(ConfigurationError):
            world.start()

    def test_explicit_small_f(self):
        run = nice_run("mr", n=7, seed=4, f=1).run(until=300.0)
        assert run.decided
        assert_correct(run)

    def test_leader_crash_mid_run(self):
        run = consensus_run(
            "mr", n=5, seed=5, pre_behavior="ideal",
            crashes=crash_at((0, 2.0)),
        ).run(until=1500.0)
        assert run.decided
        assert_correct(run)

    @pytest.mark.parametrize("seed", range(5))
    def test_erratic_detector_then_stability(self, seed):
        run = stabilizing_run("mr", n=5, seed=seed,
                              stabilize_time=120.0).run(until=4000.0)
        assert run.decided
        assert_correct(run)


class TestPaxos:
    def test_nice_run(self):
        run = nice_run("paxos", n=5, seed=0).run(until=500.0)
        assert run.decided
        assert_correct(run)

    def test_leader_crash_then_new_proposer(self):
        run = consensus_run(
            "paxos", n=5, seed=1, pre_behavior="ideal",
            crashes=crash_at((0, 2.0)),
        ).run(until=2000.0)
        assert run.decided
        assert_correct(run)

    @pytest.mark.parametrize("seed", range(5))
    def test_erratic_omega_contention(self, seed):
        """Several self-believed proposers must not break safety."""
        run = stabilizing_run("paxos", n=5, seed=seed,
                              stabilize_time=150.0).run(until=4000.0)
        assert run.decided
        assert_correct(run)

    def test_chosen_value_from_promises(self):
        run = nice_run("paxos", n=5, seed=2,
                       values=[f"v{i}" for i in range(5)]).run(until=500.0)
        assert run.decisions[0] in [f"v{i}" for i in range(5)]


class TestBuilders:
    def test_unknown_algorithm_rejected(self):
        from repro.consensus import attach_consensus
        world = World(n=3, seed=0)
        with pytest.raises(ConfigurationError):
            attach_consensus(world, "raft", lambda pid: None)

    def test_propose_all_defaults_to_pids(self):
        run = nice_run("ec", n=3, seed=0).run(until=200.0)
        assert run.decisions[0] in (0, 1, 2)
