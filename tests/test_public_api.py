"""The curated public API surface: importability and README contract."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_mirror(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert getattr(repro, name) is getattr(core, name)

    def test_readme_quickstart_works(self):
        """The exact code from README.md's quickstart section."""
        from repro import ECConsensus, ReliableBroadcast, World, attach_ec_stack
        from repro.workloads import partially_synchronous_link

        world = World(n=5, seed=7,
                      default_link=partially_synchronous_link(gst=40.0))
        detectors = attach_ec_stack(world, suspects="ring")
        protocols = []
        for pid in world.pids:
            rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
            protocols.append(world.attach(pid, ECConsensus(detectors[pid], rb)))
        world.start()
        for pid in world.pids:
            protocols[pid].propose(f"value-{pid}")
        world.schedule_crash(0, 120.0)
        world.run(until=2500.0)
        decisions = [p.decision for p in protocols if p.decided]
        assert decisions
        assert all(d == decisions[0] for d in decisions)

    def test_subpackages_importable(self):
        for module in (
            "repro.sim", "repro.fd", "repro.transform", "repro.broadcast",
            "repro.consensus", "repro.analysis", "repro.workloads",
            "repro.core", "repro.cli", "repro.net", "repro.obs",
            "repro.cluster", "repro.proc",
        ):
            importlib.import_module(module)

    def test_unified_cluster_surface(self):
        """The ClusterAPI contract and both implementations share a home."""
        from repro.cluster import (
            ClusterAPI, LocalCluster, ProcessCluster, standard_verdicts,
            verdicts_ok,
        )

        for method in ("start", "stop", "crash", "wait_quiescent",
                       "traces", "verdicts"):
            assert hasattr(LocalCluster, method), method
            assert hasattr(ProcessCluster, method), method
        assert callable(standard_verdicts) and callable(verdicts_ok)
        assert isinstance(ClusterAPI, type)

    def test_local_cluster_old_home_warns(self):
        """repro.net.cluster still works but carries a DeprecationWarning."""
        import warnings

        from repro.cluster import LocalCluster as canonical
        from repro.net import cluster as old_home

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert old_home.LocalCluster is canonical
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_local_cluster_net_reexport_does_not_warn(self):
        """`from repro.net import LocalCluster` stays first-class."""
        import warnings

        import repro.net as net
        from repro.cluster import LocalCluster as canonical

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert net.LocalCluster is canonical
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_public_items_documented(self):
        """Every public callable/class reachable from the root has a
        docstring (deliverable (e): doc comments on every public item)."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, undocumented
