"""The curated public API surface: importability and README contract."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_mirror(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert getattr(repro, name) is getattr(core, name)

    def test_readme_quickstart_works(self):
        """The exact code from README.md's quickstart section."""
        from repro import ECConsensus, ReliableBroadcast, World, attach_ec_stack
        from repro.workloads import partially_synchronous_link

        world = World(n=5, seed=7,
                      default_link=partially_synchronous_link(gst=40.0))
        detectors = attach_ec_stack(world, suspects="ring")
        protocols = []
        for pid in world.pids:
            rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
            protocols.append(world.attach(pid, ECConsensus(detectors[pid], rb)))
        world.start()
        for pid in world.pids:
            protocols[pid].propose(f"value-{pid}")
        world.schedule_crash(0, 120.0)
        world.run(until=2500.0)
        decisions = [p.decision for p in protocols if p.decided]
        assert decisions
        assert all(d == decisions[0] for d in decisions)

    def test_subpackages_importable(self):
        for module in (
            "repro.sim", "repro.fd", "repro.transform", "repro.broadcast",
            "repro.consensus", "repro.analysis", "repro.workloads",
            "repro.core", "repro.cli",
        ):
            importlib.import_module(module)

    def test_public_items_documented(self):
        """Every public callable/class reachable from the root has a
        docstring (deliverable (e): doc comments on every public item)."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, undocumented
