"""The curated public API surface: importability and README contract."""

import dataclasses
import importlib
import random

import pytest

import repro
from repro.analysis import (
    ConsensusOutcome,
    FDRecord,
    PropertyCheck,
    QoSReport,
    collect_results,
)
from repro.cluster import STACKS, TRANSPORTS
from repro.lint import all_program_rules, all_rules
from repro.net import RuntimeNetwork, RuntimeWorld
from repro.obs import EventSchema, MemorySink, MetricSchema, Trace
from repro.proc import build_node
from repro.sim import (
    NetworkAPI,
    Periodic,
    ProcessAPI,
    SchedulerAPI,
    World,
    WorldAPI,
    stream_for,
)
from repro.workloads import ConsensusRun


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_mirror(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert getattr(repro, name) is getattr(core, name)

    def test_readme_quickstart_works(self):
        """The exact code from README.md's quickstart section."""
        from repro import ECConsensus, ReliableBroadcast, World, attach_ec_stack
        from repro.workloads import partially_synchronous_link

        world = World(n=5, seed=7,
                      default_link=partially_synchronous_link(gst=40.0))
        detectors = attach_ec_stack(world, suspects="ring")
        protocols = []
        for pid in world.pids:
            rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
            protocols.append(world.attach(pid, ECConsensus(detectors[pid], rb)))
        world.start()
        for pid in world.pids:
            protocols[pid].propose(f"value-{pid}")
        world.schedule_crash(0, 120.0)
        world.run(until=2500.0)
        decisions = [p.decision for p in protocols if p.decided]
        assert decisions
        assert all(d == decisions[0] for d in decisions)

    def test_subpackages_importable(self):
        for module in (
            "repro.sim", "repro.fd", "repro.transform", "repro.broadcast",
            "repro.consensus", "repro.analysis", "repro.workloads",
            "repro.core", "repro.cli", "repro.net", "repro.obs",
            "repro.cluster", "repro.proc",
        ):
            importlib.import_module(module)

    def test_unified_cluster_surface(self):
        """The ClusterAPI contract and both implementations share a home."""
        from repro.cluster import (
            ClusterAPI, LocalCluster, ProcessCluster, standard_verdicts,
            verdicts_ok,
        )

        for method in ("start", "stop", "crash", "wait_quiescent",
                       "traces", "verdicts"):
            assert hasattr(LocalCluster, method), method
            assert hasattr(ProcessCluster, method), method
        assert callable(standard_verdicts) and callable(verdicts_ok)
        assert isinstance(ClusterAPI, type)

    def test_local_cluster_old_home_warns(self):
        """repro.net.cluster still works but carries a DeprecationWarning."""
        import warnings

        from repro.cluster import LocalCluster as canonical
        from repro.net import cluster as old_home

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert old_home.LocalCluster is canonical
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_local_cluster_net_reexport_does_not_warn(self):
        """`from repro.net import LocalCluster` stays first-class."""
        import warnings

        import repro.net as net
        from repro.cluster import LocalCluster as canonical

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert net.LocalCluster is canonical
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_public_items_documented(self):
        """Every public callable/class reachable from the root has a
        docstring (deliverable (e): doc comments on every public item)."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, undocumented


class TestReexportIntegrity:
    """Package ``__init__`` promises resolve to the defining objects.

    Re-export drift (a submodule rename ``__init__`` missed) breaks
    ``from repro.X import Y`` for users even while tests importing the
    submodules directly stay green.  These literal imports are also the
    consumers ``repro lint``'s ``unreachable-public`` rule counts for
    type-only exports (result dataclasses, API protocols) that no runtime
    path needs to name.
    """

    def test_analysis_result_types_are_the_defining_ones(self):
        import repro.analysis.consensus_properties as cp
        import repro.analysis.fd_properties as fdp
        import repro.analysis.qos as qos
        import repro.analysis.report as report

        assert ConsensusOutcome is cp.ConsensusOutcome
        assert FDRecord is fdp.FDRecord
        assert PropertyCheck is fdp.PropertyCheck
        assert QoSReport is qos.QoSReport
        assert collect_results is report.collect_results
        for result_type in (ConsensusOutcome, PropertyCheck, QoSReport):
            assert dataclasses.is_dataclass(result_type)

    def test_cluster_enumerations_match_net_delegation(self):
        # repro.net lazily re-exports the moved names via module
        # __getattr__; the delegation must land on the identical objects.
        import repro.net as net

        assert net.TRANSPORTS is TRANSPORTS
        assert net.attach_standard_stack.__module__ == "repro.cluster.local"
        assert set(STACKS) == {"ring", "heartbeat", "rsm"}
        assert set(TRANSPORTS) == {"loopback", "udp", "tcp"}

    def test_lint_rule_registries_are_disjoint_and_nonempty(self):
        per_file = {rule.id for rule in all_rules()}
        program = {rule.id for rule in all_program_rules()}
        assert per_file and program
        assert not per_file & program

    def test_runtime_world_types_come_from_host(self):
        import repro.net.host as host

        assert RuntimeNetwork is host.RuntimeNetwork
        assert RuntimeWorld is host.RuntimeWorld

    def test_obs_schema_types_and_trace_alias(self):
        assert Trace is MemorySink  # the historical name stays importable
        assert {f.name for f in dataclasses.fields(EventSchema)} >= {
            "kind", "required", "optional",
        }
        assert {f.name for f in dataclasses.fields(MetricSchema)} >= {
            "name", "kind", "labels",
        }

    def test_proc_build_node_is_the_node_module_factory(self):
        import repro.proc.node as node

        assert build_node is node.build_node

    def test_sim_api_protocols_and_helpers(self):
        for protocol in (NetworkAPI, ProcessAPI, SchedulerAPI, WorldAPI):
            assert getattr(protocol, "_is_protocol", False)
        assert stream_for.__module__ == "repro.sim.api"
        world = World(n=2, seed=7)
        stream = stream_for(world, "fd", 0)
        assert isinstance(stream, random.Random)

    def test_sim_periodic_is_the_component_timer(self):
        import repro.sim.component as component

        assert Periodic is component.Periodic

    def test_workloads_consensus_run_shape(self):
        assert dataclasses.is_dataclass(ConsensusRun)
        names = {f.name for f in dataclasses.fields(ConsensusRun)}
        assert {"world", "algo"} <= names
