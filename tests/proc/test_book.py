"""AddressBook: validation, (de)serialization, and port allocation."""

import json
import socket

import pytest

from repro.errors import ConfigurationError
from repro.proc import PROC_TRANSPORTS, AddressBook, NodeAddress


def make_book(n=3, **overrides):
    settings = dict(
        n=n,
        nodes=[
            NodeAddress(pid=pid, host="127.0.0.1", port=42001 + pid)
            for pid in range(n)
        ],
    )
    settings.update(overrides)
    return AddressBook(**settings)


# -------------------------------------------------------------- validation
def test_defaults_follow_the_paper_scaling():
    book = make_book(period=0.1)
    assert book.initial_timeout == pytest.approx(0.24)
    assert book.timeout_increment == pytest.approx(0.1)


def test_loopback_cannot_cross_process_boundaries():
    with pytest.raises(ConfigurationError, match="loopback"):
        make_book(transport="loopback")
    assert "loopback" not in PROC_TRANSPORTS


@pytest.mark.parametrize(
    "bad",
    [dict(n=0), dict(stack="star"), dict(codec="pickle")],
    ids=["n", "stack", "codec"],
)
def test_rejects_bad_settings(bad):
    with pytest.raises(ConfigurationError):
        make_book(**bad)


def test_nodes_must_cover_pids_exactly():
    nodes = [
        NodeAddress(pid=0, host="127.0.0.1", port=42001),
        NodeAddress(pid=2, host="127.0.0.1", port=42002),
    ]
    with pytest.raises(ConfigurationError, match="cover pids"):
        AddressBook(n=2, nodes=nodes)


def test_address_lookup():
    book = make_book()
    assert book.address(1) == ("127.0.0.1", 42002)
    assert book.addresses() == {
        0: ("127.0.0.1", 42001),
        1: ("127.0.0.1", 42002),
        2: ("127.0.0.1", 42003),
    }
    with pytest.raises(ConfigurationError):
        book.address(7)


# ---------------------------------------------------------------- (de)serde
def test_json_roundtrip(tmp_path):
    book = make_book(transport="tcp", stack="heartbeat", seed=9, duration=2.0)
    path = book.save(tmp_path / "book.json")
    loaded = AddressBook.load(path)
    assert loaded == book
    # The on-disk shape is the documented plain-JSON document.
    data = json.loads(path.read_text())
    assert data["nodes"][0] == {"pid": 0, "host": "127.0.0.1", "port": 42001}


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="unknown address-book keys"):
        AddressBook.from_dict({"n": 1, "nodes": [], "color": "blue"})


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "book.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError):
        AddressBook.load(path)


# --------------------------------------------------------------- allocation
def test_allocate_control_ports_for_the_fault_endpoints(tmp_path):
    book = AddressBook.allocate(3, control=True)
    ports = [entry.control_port for entry in book.nodes]
    assert all(port is not None for port in ports)
    assert len(set(ports)) == 3
    assert book.control_address(1) == ("127.0.0.1", ports[1])
    assert book.control_addresses() == {
        pid: ("127.0.0.1", ports[pid]) for pid in range(3)
    }
    # The ports survive the JSON trip to the child processes.
    loaded = AddressBook.load(book.save(tmp_path / "book.json"))
    assert loaded == book


def test_control_address_is_none_without_allocation():
    book = make_book()
    assert book.control_address(0) is None
    assert book.control_addresses() == {}


@pytest.mark.parametrize("transport", PROC_TRANSPORTS)
def test_allocate_hands_out_distinct_bindable_ports(transport):
    book = AddressBook.allocate(3, transport=transport, seed=5)
    assert book.seed == 5
    ports = [entry.port for entry in book.nodes]
    assert len(set(ports)) == 3
    kind = socket.SOCK_DGRAM if transport == "udp" else socket.SOCK_STREAM
    for host, port in book.addresses().values():
        probe = socket.socket(socket.AF_INET, kind)
        try:
            probe.bind((host, port))  # released by allocate, still free
        finally:
            probe.close()
