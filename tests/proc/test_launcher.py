"""ProcessCluster units that never spawn a process, plus the lenient
trace reader that survives ``kill -9``-torn files."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.obs.sinks import JsonlSink
from repro.proc import ProcessCluster
from repro.proc.launcher import _read_trace_lenient


# ---------------------------------------------------------- lenient reading
def write_trace(path, events, torn_tail=None):
    sink = JsonlSink(path, node=0, epoch_wall=100.0, epoch_mono=50.0)
    for time, kind, pid in events:
        sink.record(time, kind, pid)
    sink.close()
    if torn_tail is not None:
        with open(path, "a", encoding="utf-8") as f:
            f.write(torn_tail)


def test_lenient_reader_on_an_intact_file(tmp_path):
    path = tmp_path / "node-0.jsonl"
    write_trace(path, [(0.1, "fd.suspect", 0), (0.2, "fd.restore", 0)])
    trace = _read_trace_lenient(path)
    assert [ev.kind for ev in trace.events] == ["fd.suspect", "fd.restore"]
    assert trace.node == 0
    assert trace.epoch_wall == 100.0


def test_lenient_reader_keeps_prefix_of_a_torn_file(tmp_path):
    path = tmp_path / "node-0.jsonl"
    # kill -9 landed mid-write: the final line is half a JSON object.
    write_trace(
        path,
        [(0.1, "fd.suspect", 0), (0.2, "fd.restore", 0)],
        torn_tail='{"t": 0.3, "k": "fd.sus',
    )
    trace = _read_trace_lenient(path)
    assert [ev.kind for ev in trace.events] == ["fd.suspect", "fd.restore"]


def test_lenient_reader_on_an_empty_victim(tmp_path):
    """A node killed before its first event ships a header-only file."""
    path = tmp_path / "node-0.jsonl"
    write_trace(path, [])
    assert _read_trace_lenient(path).events == []


# --------------------------------------------------- launcher without spawns
def test_ctor_validates_like_an_address_book(tmp_path):
    with pytest.raises(ConfigurationError, match="loopback"):
        ProcessCluster(2, transport="loopback", workdir=tmp_path)
    with pytest.raises(ConfigurationError):
        ProcessCluster(2, stack="star", workdir=tmp_path)
    with pytest.raises(ConfigurationError):
        ProcessCluster(0, workdir=tmp_path)


def test_prestart_state(tmp_path):
    cluster = ProcessCluster(3, workdir=tmp_path, duration=1.0)
    assert cluster.correct_pids == frozenset({0, 1, 2})
    assert cluster.elapsed == 0.0
    assert [p.name for p in cluster.trace_files] == [
        "node-0.jsonl", "node-1.jsonl", "node-2.jsonl"
    ]


def test_crash_validates_pid_and_queues_before_start(tmp_path):
    cluster = ProcessCluster(3, workdir=tmp_path)
    with pytest.raises(ConfigurationError, match="out of range"):
        cluster.crash(3)
    cluster.crash(0, at=2.5)  # queued: nothing to kill yet
    assert cluster._pending_crashes == [(0, 2.5)]
    assert cluster.correct_pids == frozenset({0, 1, 2})


def test_wait_quiescent_requires_start(tmp_path):
    cluster = ProcessCluster(2, workdir=tmp_path)

    async def drive():
        with pytest.raises(ConfigurationError, match="not started"):
            await cluster.wait_quiescent(timeout=0.1)

    asyncio.run(drive())


def test_stop_before_start_is_a_safe_noop(tmp_path):
    cluster = ProcessCluster(2, workdir=tmp_path)
    asyncio.run(cluster.stop())
    asyncio.run(cluster.stop())  # idempotent
    assert cluster.exit_statuses == {}
