"""The ``repro trace`` command family: merge / stats / check / schema."""

import json

import pytest

from repro.cli import main
from repro.obs import JsonlSink, known_kinds, read_trace_file


@pytest.fixture
def node_files(tmp_path):
    """Two skewed per-node files with one cross-node handshake."""
    msg = {"channel": "fd", "src": 0, "dst": 1, "tag": "hb", "round": 1}
    a = JsonlSink(tmp_path / "node-0.jsonl", node=0,
                  epoch_wall=1000.0, epoch_mono=0.0)
    a.record(1.0, "send", 0, **msg)
    a.record(2.0, "crash", 0)
    a.close()
    b = JsonlSink(tmp_path / "node-1.jsonl", node=1,
                  epoch_wall=1000.5, epoch_mono=0.0)
    b.record(1.5, "deliver", 1, **msg)
    b.close()
    return [str(tmp_path / "node-0.jsonl"), str(tmp_path / "node-1.jsonl")]


def test_trace_merge_prints_offsets(node_files, capsys):
    assert main(["trace", "merge", *node_files]) == 0
    out = capsys.readouterr().out
    assert "node 0: offset +0.000000s" in out
    assert "node 1: offset +0.500000s" in out
    assert "merged 3 events from 2 file(s)" in out


def test_trace_merge_writes_a_readable_combined_file(node_files, tmp_path,
                                                     capsys):
    merged = tmp_path / "merged.jsonl"
    assert main(["trace", "merge", *node_files, "-o", str(merged)]) == 0
    tf = read_trace_file(merged)
    assert tf.node is None  # combined stream
    assert tf.epoch_wall == 1000.0  # the anchoring (earliest) epoch
    assert [ev.kind for ev in tf] == ["send", "crash", "deliver"]
    assert tf.events[2].time == pytest.approx(2.0)  # 1.5 rebased by +0.5


def test_trace_stats_per_file(node_files, capsys):
    assert main(["trace", "stats", *node_files]) == 0
    out = capsys.readouterr().out
    assert "node 0" in out and "node 1" in out
    assert "send" in out and "deliver" in out


def test_trace_check_accepts_conforming_files(node_files, capsys):
    assert main(["trace", "check", *node_files]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 2


def test_trace_check_rejects_schema_violations(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    sink = JsonlSink(bad, node=0, epoch_wall=0.0, epoch_mono=0.0)
    sink.record(1.0, "fd-output", 0)         # unknown kind
    sink.record(2.0, "fd", 0, channel="fd")  # missing suspected/trusted
    sink.close()
    assert main(["trace", "check", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "FAILED (2 schema violations in 2 events)" in captured.out
    assert "fd-output" in captured.err


def test_trace_schema_renders_the_registry(capsys):
    assert main(["trace", "schema"]) == 0
    out = capsys.readouterr().out
    for kind in known_kinds():
        assert f"`{kind}`" in out


def test_trace_subcommands_fail_cleanly_on_missing_file(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    for sub in ("merge", "stats", "check"):
        assert main(["trace", sub, missing]) == 2


def test_cluster_trace_out_end_to_end(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    code = main([
        "cluster", "--virtual", "--transport", "loopback",
        "-n", "3", "--seed", "0",
        "--trace-out", str(out),
    ])
    assert code == 0
    assert "trace shipped to" in capsys.readouterr().out
    header = json.loads(out.read_text().splitlines()[0])
    assert header["trace"] == "repro.obs"
    assert main(["trace", "check", str(out)]) == 0
