"""The ``repro trace`` command family: merge / stats / qos / check / schema."""

import json

import pytest

from repro.cli import main
from repro.obs import JsonlSink, known_kinds, read_trace_file


@pytest.fixture
def node_files(tmp_path):
    """Two skewed per-node files with one cross-node handshake."""
    msg = {"channel": "fd", "src": 0, "dst": 1, "tag": "hb", "round": 1}
    a = JsonlSink(tmp_path / "node-0.jsonl", node=0,
                  epoch_wall=1000.0, epoch_mono=0.0)
    a.record(1.0, "send", 0, **msg)
    a.record(2.0, "crash", 0)
    a.close()
    b = JsonlSink(tmp_path / "node-1.jsonl", node=1,
                  epoch_wall=1000.5, epoch_mono=0.0)
    b.record(1.5, "deliver", 1, **msg)
    b.close()
    return [str(tmp_path / "node-0.jsonl"), str(tmp_path / "node-1.jsonl")]


def test_trace_merge_prints_offsets(node_files, capsys):
    assert main(["trace", "merge", *node_files]) == 0
    out = capsys.readouterr().out
    assert "node 0: offset +0.000000s" in out
    assert "node 1: offset +0.500000s" in out
    assert "merged 3 events from 2 file(s)" in out


def test_trace_merge_writes_a_readable_combined_file(node_files, tmp_path,
                                                     capsys):
    merged = tmp_path / "merged.jsonl"
    assert main(["trace", "merge", *node_files, "-o", str(merged)]) == 0
    tf = read_trace_file(merged)
    assert tf.node is None  # combined stream
    assert tf.epoch_wall == 1000.0  # the anchoring (earliest) epoch
    assert [ev.kind for ev in tf] == ["send", "crash", "deliver"]
    assert tf.events[2].time == pytest.approx(2.0)  # 1.5 rebased by +0.5


def test_trace_stats_per_file(node_files, capsys):
    assert main(["trace", "stats", *node_files]) == 0
    out = capsys.readouterr().out
    assert "node 0" in out and "node 1" in out
    assert "send" in out and "deliver" in out


def test_trace_stats_reports_counts_and_bytes(node_files, capsys):
    assert main(["trace", "stats", node_files[0]]) == 0
    out = capsys.readouterr().out
    send_line = next(l for l in out.splitlines() if l.strip().startswith("send"))
    assert "1 events" in send_line
    # The byte column is the on-disk JSONL line length of the send event.
    with open(node_files[0], encoding="utf-8") as fh:
        send_bytes = len(next(l for l in fh if '"k": "send"' in l or '"k":"send"' in l))
    assert f"{send_bytes} bytes" in send_line


@pytest.fixture
def qos_files(tmp_path):
    """Two per-node files of a clean kill-the-leader run: p0 crashes at
    t=10, both survivors suspect it and re-elect p1, then the fdp channel
    hums along at exactly 2(n-1)=4 messages per 5.0-unit period."""
    files = []
    for pid, detect_at in ((1, 13.0), (2, 14.0)):
        sink = JsonlSink(tmp_path / f"node-{pid}.jsonl", node=pid,
                         epoch_wall=1000.0, epoch_mono=0.0)
        sink.record(0.0, "fd", pid, channel="fd",
                    suspected=frozenset(), trusted=0)
        if pid == 1:
            sink.record(10.0, "crash", 0)
        sink.record(detect_at, "fd", pid, channel="fd",
                    suspected=frozenset({0}), trusted=1)
        if pid == 1:
            # 4 msgs/period over the cost window [19, 49]: 24 sends.
            for i in range(24):
                sink.record(19.0 + (i + 0.5) * 1.25, "send", 1,
                            channel="fdp", src=1, dst=2, tag="list")
        sink.record(49.0, "fd", pid, channel="fd",
                    suspected=frozenset({0}), trusted=1)
        sink.close()
        files.append(str(tmp_path / f"node-{pid}.jsonl"))
    return files


def test_trace_qos_reports_the_headline_numbers(qos_files, capsys):
    assert main(["trace", "qos", "--period", "5.0", *qos_files]) == 0
    out = capsys.readouterr().out
    assert "detection time T_D   : p0: 4.000" in out
    assert "mistakes             : 0 (0 unresolved)" in out
    assert "leader stabilization : t=14.000 (leader p1)" in out
    assert "fdp" in out and "[2(n-1) bound = 4: OK]" in out


def test_trace_qos_exit_code_flags_a_bound_violation(tmp_path, capsys):
    sink = JsonlSink(tmp_path / "run.jsonl", node=None,
                     epoch_wall=0.0, epoch_mono=0.0)
    for pid in (1, 2):
        sink.record(0.0, "fd", pid, channel="fd",
                    suspected=frozenset(), trusted=1)
        sink.record(49.0, "fd", pid, channel="fd",
                    suspected=frozenset(), trusted=1)
    for i in range(80):  # 10 msgs/period on a 3-node system: over 2(n-1)
        sink.record(5.0 + i * 0.5, "send", 1,
                    channel="fdp", src=1, dst=2, tag="list")
    sink.close()
    code = main(["trace", "qos", "--period", "5.0", "--n", "3",
                 str(tmp_path / "run.jsonl")])
    assert code == 1
    assert "VIOLATED" in capsys.readouterr().out


@pytest.fixture
def span_file(tmp_path):
    """One closed span plus one never-instrumented request."""
    sink = JsonlSink(tmp_path / "spans.jsonl", node=None,
                     epoch_wall=1000.0, epoch_mono=0.0)
    sink.record(0.0, "svc.request", 0, client="c", op="put", span="c.1")
    sink.record(0.001, "span.queue", 0, span="c.1")
    sink.record(0.002, "span.propose", 0, span="c.1", slot=0)
    sink.record(0.006, "span.decide", 0, span="c.1", slot=0)
    sink.record(0.007, "span.apply", 0, span="c.1", slot=0)
    sink.record(0.0075, "span.reply", 0, span="c.1", status="ok")
    sink.record(1.0, "svc.request", 0, client="legacy", op="get")
    sink.close()
    return str(tmp_path / "spans.jsonl")


def test_trace_spans_prints_the_stage_table(span_file, capsys):
    assert main(["trace", "spans", span_file]) == 0
    out = capsys.readouterr().out
    assert "1 closed (1 complete), 0 open" in out
    assert "latency attributed   : 100.0%" in out
    for stage in ("queue", "propose", "decide", "apply", "reply", "total"):
        assert stage in out


def test_trace_stats_reports_span_coverage(span_file, capsys):
    assert main(["trace", "stats", span_file]) == 0
    out = capsys.readouterr().out
    assert ("span coverage: 1/1 instrumented requests closed (100.0%); "
            "2 svc.request events total") in out


def test_trace_check_accepts_conforming_files(node_files, capsys):
    assert main(["trace", "check", *node_files]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 2


def test_trace_check_rejects_schema_violations(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    sink = JsonlSink(bad, node=0, epoch_wall=0.0, epoch_mono=0.0)
    sink.record(1.0, "fd-output", 0)         # unknown kind
    sink.record(2.0, "fd", 0, channel="fd")  # missing suspected/trusted
    sink.close()
    assert main(["trace", "check", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "FAILED (2 schema violations in 2 events)" in captured.out
    assert "fd-output" in captured.err


def test_trace_schema_renders_the_registry(capsys):
    assert main(["trace", "schema"]) == 0
    out = capsys.readouterr().out
    for kind in known_kinds():
        assert f"`{kind}`" in out


def test_trace_subcommands_fail_cleanly_on_missing_file(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    for sub in ("merge", "stats", "qos", "check"):
        assert main(["trace", sub, missing]) == 2


def test_cluster_trace_out_end_to_end(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    code = main([
        "cluster", "--virtual", "--transport", "loopback",
        "-n", "3", "--seed", "0",
        "--trace-out", str(out),
    ])
    assert code == 0
    assert "trace shipped to" in capsys.readouterr().out
    header = json.loads(out.read_text().splitlines()[0])
    assert header["trace"] == "repro.obs"
    assert main(["trace", "check", str(out)]) == 0
