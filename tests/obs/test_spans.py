"""Per-command causal spans (:mod:`repro.obs.spans`).

The synthetic traces here hand-place the six timeline marks
(``svc.request`` → ``span.queue/propose/decide/apply/reply``) so every
property is checkable exactly: the five stage latencies telescope to the
client-observed total (attribution is 1.0, not ≈1.0), redirected
requests share one span, and open spans / uninstrumented requests are
counted but never pollute the stage distributions.
"""

import pytest

from repro.obs import MemorySink
from repro.obs.spans import (
    STAGE_NAMES,
    analyze_spans,
    collect_spans,
    span_coverage,
)


def _record_span(
    trace, span, base, steps=(0.001, 0.002, 0.004, 0.001, 0.0005),
    pid=0, status="ok",
):
    """One fully-marked span starting at *base*; *steps* are the five
    stage durations in pipeline order."""
    t = base
    trace.record(t, "svc.request", pid, client="c", op="put", span=span)
    kinds = ("span.queue", "span.propose", "span.decide", "span.apply",
             "span.reply")
    for kind, step in zip(kinds, steps):
        t += step
        data = {"span": span}
        if kind == "span.reply":
            data["status"] = status
        trace.record(t, kind, pid, **data)
    return t


def test_stage_latencies_telescope_to_the_client_observed_total():
    trace = MemorySink()
    steps = (0.001, 0.002, 0.004, 0.001, 0.0005)
    _record_span(trace, "c.1", 0.0, steps)
    report = analyze_spans(trace)
    assert len(report.spans) == 1 and report.complete == 1
    span = report.spans[0]
    assert span.complete
    for name, step in zip(STAGE_NAMES, steps):
        assert span.stage(name) == pytest.approx(step)
    assert span.total == pytest.approx(sum(steps))
    # The acceptance metric: stages attribute the total exactly.
    assert report.attributed == pytest.approx(1.0)
    assert report.totals == [pytest.approx(sum(steps))]


def test_open_spans_are_counted_but_not_measured():
    trace = MemorySink()
    _record_span(trace, "c.1", 0.0)
    # A second command that never came back within the trace:
    trace.record(1.0, "svc.request", 0, client="c", op="put", span="c.2")
    trace.record(1.001, "span.queue", 0, span="c.2")
    trace.record(1.002, "span.propose", 0, span="c.2")
    report = analyze_spans(trace)
    assert len(report.spans) == 1
    assert report.open_spans == 1
    assert report.coverage.with_span == 2 and report.coverage.closed == 1
    assert report.attributed == pytest.approx(1.0)  # complete spans only


def test_redirected_request_shares_one_span():
    """A client retrying against the leader reuses the correlation id:
    two svc.request events, one closed span, coverage counts both."""
    trace = MemorySink()
    trace.record(0.0, "svc.request", 1, client="c", op="put", span="c.1")
    _record_span(trace, "c.1", 0.5, pid=0)
    report = analyze_spans(trace)
    assert len(report.spans) == 1
    assert report.open_spans == 0
    coverage = report.coverage
    assert coverage.requests == 2
    assert coverage.with_span == 2
    assert coverage.closed == 2  # both requests' span closed
    assert coverage.ratio == pytest.approx(1.0)
    # The serving replica is the one that replied.
    assert report.spans[0].pid == 0


def test_uninstrumented_requests_dilute_coverage_only():
    trace = MemorySink()
    _record_span(trace, "c.1", 0.0)
    trace.record(2.0, "svc.request", 0, client="legacy", op="get")
    coverage = span_coverage(trace)
    assert coverage.requests == 2
    assert coverage.with_span == 1 and coverage.closed == 1
    assert coverage.ratio == pytest.approx(1.0)
    assert analyze_spans(trace).attributed == pytest.approx(1.0)


def test_marks_from_a_non_serving_replica_are_ignored():
    """Only the replying pid's timeline measures the stages — a follower
    that also applied the command must not shadow the leader's marks."""
    trace = MemorySink()
    end = _record_span(trace, "c.1", 0.0, pid=0)
    # The follower applies the same decided command later:
    trace.record(end + 1.0, "span.decide", 1, span="c.1")
    trace.record(end + 1.1, "span.apply", 1, span="c.1")
    report = analyze_spans(trace)
    assert report.complete == 1
    assert report.spans[0].pid == 0
    assert report.spans[0].total == pytest.approx(0.0085)


def test_collect_spans_orders_by_reply_and_empty_trace_is_clean():
    trace = MemorySink()
    _record_span(trace, "c.2", 1.0)
    _record_span(trace, "c.1", 0.0, steps=(0.5, 0.5, 0.5, 0.5, 0.5))
    spans = collect_spans(trace)
    assert [s.span for s in spans] == ["c.2", "c.1"]  # c.2 replied first
    empty = analyze_spans(MemorySink())
    assert empty.spans == [] and empty.attributed is None
    assert empty.coverage.ratio is None
    assert "no spans recorded" in empty.format()


def test_report_format_names_every_stage():
    trace = MemorySink()
    for i in range(20):
        _record_span(trace, f"c.{i}", i * 0.1)
    text = analyze_spans(trace).format()
    assert "20 closed (20 complete), 0 open" in text
    assert "span coverage        : 100.0%" in text
    assert "latency attributed   : 100.0%" in text
    for name in STAGE_NAMES:
        assert f"\n    {name:<18s}:" in text
