"""The metrics subsystem: registry, rendering, reporter, trace aggregation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    METRIC_SCHEMAS,
    JsonlSink,
    MetricsRegistry,
    MetricsReporter,
    aggregate_trace_kinds,
    known_metrics,
    metric_schema_for,
    register_metric,
    render_prometheus,
)
from repro.sim import World


# ----------------------------------------------------------------- registry

def test_counter_inc_and_value():
    reg = MetricsRegistry()
    reg.inc("messages_sent_total", channel="fd")
    reg.inc("messages_sent_total", amount=2, channel="fd")
    reg.inc("messages_sent_total", channel="fdp")
    assert reg.value("messages_sent_total", channel="fd") == 3
    assert reg.value("messages_sent_total", channel="fdp") == 1
    assert reg.value("messages_sent_total", channel="consensus") == 0


def test_gauge_set_overwrites():
    reg = MetricsRegistry()
    reg.set("transport_frames_sent", 10)
    reg.set("transport_frames_sent", 7)
    assert reg.value("transport_frames_sent") == 7


def test_series_lists_every_label_combination():
    reg = MetricsRegistry()
    reg.inc("messages_sent_total", channel="fdp")
    reg.inc("messages_sent_total", channel="fd")
    series = reg.series("messages_sent_total")
    assert series == [({"channel": "fd"}, 1), ({"channel": "fdp"}, 1)]


def test_unknown_metric_name_raises():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError, match="unregistered metric"):
        reg.inc("message_sent_total", channel="fd")  # typo


def test_wrong_label_set_raises():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError, match="labels"):
        reg.inc("messages_sent_total")  # channel missing
    with pytest.raises(ConfigurationError, match="labels"):
        reg.inc("frames_undecodable_total", channel="fd")  # none declared


def test_scalar_and_histogram_methods_are_not_interchangeable():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError, match="use observe"):
        register_metric("test_scratch_seconds", kind="histogram")
        reg.inc("test_scratch_seconds")
    with pytest.raises(ConfigurationError, match="use inc/set"):
        reg.observe("messages_sent_total", 5, channel="fd")


def test_register_metric_conflict_and_idempotence():
    register_metric("test_scratch_total", kind="counter", labels=("k",))
    # Identical re-registration is fine (module reloads do this).
    register_metric("test_scratch_total", kind="counter", labels=("k",))
    with pytest.raises(ConfigurationError, match="already registered"):
        register_metric("test_scratch_total", kind="gauge")
    assert "test_scratch_total" in known_metrics()
    assert metric_schema_for("test_scratch_total").labels == ("k",)


def test_histogram_tracks_count_sum_min_max():
    register_metric("test_scratch_seconds", kind="histogram")
    reg = MetricsRegistry()
    for v in (0.5, 1.5, 1.0):
        reg.observe("test_scratch_seconds", v)
    h = reg.histogram("test_scratch_seconds")
    assert h["count"] == 3
    assert h["sum"] == pytest.approx(3.0)
    assert (h["min"], h["max"]) == (0.5, 1.5)
    empty = MetricsRegistry().histogram("test_scratch_seconds")
    assert empty == {"count": 0, "sum": 0.0, "min": None, "max": None}


def test_snapshot_is_json_safe_and_sorted():
    reg = MetricsRegistry()
    reg.inc("messages_sent_total", channel="fdp")
    reg.inc("messages_sent_total", channel="fd")
    reg.set("transport_frames_sent", 3)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert [s["labels"]["channel"] for s in snap["messages_sent_total"]] == \
        ["fd", "fdp"]
    assert snap["transport_frames_sent"] == [{"labels": {}, "value": 3}]


def test_names_reports_only_touched_metrics_in_registration_order():
    reg = MetricsRegistry()
    assert reg.names() == []
    reg.inc("bytes_sent_total", amount=10, channel="fd")
    reg.inc("messages_sent_total", channel="fd")
    order = list(METRIC_SCHEMAS)
    assert reg.names() == sorted(
        ["messages_sent_total", "bytes_sent_total"], key=order.index)


# ---------------------------------------------------------------- rendering

def test_prometheus_rendering_shape():
    reg = MetricsRegistry()
    reg.inc("messages_sent_total", channel="fd")
    reg.set("fd_suspected_size", 2, channel="fd")
    text = render_prometheus(reg)
    assert "# HELP messages_sent_total" in text
    assert "# TYPE messages_sent_total counter" in text
    assert 'messages_sent_total{channel="fd"} 1' in text
    assert "# TYPE fd_suspected_size gauge" in text
    assert 'fd_suspected_size{channel="fd"} 2' in text


def test_prometheus_rendering_histograms_expand():
    register_metric("test_scratch_seconds", kind="histogram")
    reg = MetricsRegistry()
    reg.observe("test_scratch_seconds", 2.0)
    text = render_prometheus(reg)
    assert "# TYPE test_scratch_seconds summary" in text
    assert "test_scratch_seconds_count 1" in text
    assert "test_scratch_seconds_sum 2.0" in text


# ----------------------------------------------------------------- reporter

def test_reporter_requires_positive_interval():
    with pytest.raises(ConfigurationError):
        MetricsReporter(0.0)


def test_reporter_emits_schema_valid_snapshots_in_a_sim_world():
    world = World(n=2, seed=0)
    world.attach(0, MetricsReporter(10.0))
    world.run(until=35.0)
    snaps = [ev for ev in world.trace.events
             if ev.kind == "obs.metrics_snapshot"]
    assert len(snaps) == 3  # t=10, 20, 30
    for i, ev in enumerate(snaps):
        assert ev.data["seq"] == i
        json.dumps(ev.data["metrics"])  # JSON-safe payload
    # The reporter counts its own emissions through the shared registry.
    assert world.metrics.value("metrics_snapshots_total") == 3


def test_reporter_runs_registered_samplers_before_each_snapshot():
    world = World(n=1, seed=0)
    world.metrics_samplers.append(
        lambda reg: reg.set("transport_frames_sent", 42))
    world.attach(0, MetricsReporter(10.0))
    world.run(until=15.0)
    [snap] = [ev for ev in world.trace.events
              if ev.kind == "obs.metrics_snapshot"]
    assert snap.data["metrics"]["transport_frames_sent"] == \
        [{"labels": {}, "value": 42}]


# -------------------------------------------------------- trace aggregation

def test_aggregate_trace_kinds_counts_events_and_bytes(tmp_path):
    path = tmp_path / "node-0.jsonl"
    sink = JsonlSink(path, node=0, epoch_wall=1000.0, epoch_mono=0.0)
    sink.record(1.0, "send", 0, channel="fd", src=0, dst=1)
    sink.record(2.0, "send", 0, channel="fd", src=0, dst=1)
    sink.record(3.0, "crash", 0)
    sink.close()
    stats = aggregate_trace_kinds(path)
    assert stats.header["node"] == 0
    assert stats.total_events == 3
    assert (stats.first, stats.last) == (1.0, 3.0)
    kinds = {kind: (events, size) for kind, events, size in stats.kinds()}
    assert kinds["send"][0] == 2 and kinds["crash"][0] == 1
    # Byte sizes are the raw JSONL line lengths (newline included), so
    # they reconstruct the file size minus the header line.
    lines = path.read_text().splitlines(keepends=True)
    assert sum(size for _, size in kinds.values()) == \
        sum(len(line.encode("utf-8")) for line in lines[1:])
    # The same numbers flow through the shared registry aggregation.
    assert stats.registry.value("trace_events_total", kind="send") == 2
