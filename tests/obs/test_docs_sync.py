"""docs/traces.md embeds the generated schema table — keep it in sync.

The table between the BEGIN/END markers is the verbatim output of
``schema_table("markdown")``.  Regenerate with::

    PYTHONPATH=src python - <<'EOF'
    from repro.obs import schema_table; print(schema_table("markdown"))
    EOF

and paste between the markers (or just run ``python -m repro trace schema``).
"""

from pathlib import Path

from repro.obs import schema_table

DOC = Path(__file__).parents[2] / "docs" / "traces.md"
BEGIN = "<!-- BEGIN GENERATED SCHEMA TABLE (python -m repro trace schema) -->"
END = "<!-- END GENERATED SCHEMA TABLE -->"


def test_docs_schema_table_matches_registry():
    text = DOC.read_text()
    assert BEGIN in text and END in text, "markers missing from docs/traces.md"
    embedded = text.split(BEGIN, 1)[1].split(END, 1)[0].strip()
    assert embedded == schema_table("markdown"), (
        "docs/traces.md schema table is stale — regenerate it with "
        "`python -m repro trace schema` (see this test's docstring)"
    )


def test_docs_mention_every_trace_subcommand():
    text = DOC.read_text()
    for sub in ("merge", "stats", "qos", "check", "spans", "schema"):
        assert f"repro trace {sub}" in text
