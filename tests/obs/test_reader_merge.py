"""JSONL read-back, tagged payload round-trips, and the offline merger."""

from pathlib import Path

import pytest

from repro.consensus.ec_consensus import NULL
from repro.errors import ConfigurationError
from repro.obs import (
    JsonlSink,
    MemorySink,
    TeeSink,
    TraceEvent,
    as_trace,
    iter_trace_events,
    merge_traces,
    read_trace_file,
)


def write_trace(path, node, epoch_wall, events):
    """One per-node file: *events* are (time, kind, pid, data) tuples."""
    sink = JsonlSink(path, node=node, epoch_wall=epoch_wall, epoch_mono=0.0)
    for time, kind, pid, data in events:
        sink.record(time, kind, pid, **data)
    sink.close()
    return path


# ---------------------------------------------------------------------------
# Reader and payload round-trips
# ---------------------------------------------------------------------------

def test_tagged_payloads_round_trip_exactly(tmp_path):
    payload = {
        "suspected": frozenset({1, 2}),
        "knowledge": {0: (1, "a"), 1: (2, "b")},
        "estimate": NULL,
        "path": (0, 1, 2),
        "peers": {3, 4},
        "note": None,
    }
    path = write_trace(tmp_path / "t.jsonl", 0, 10.0,
                       [(1.0, "fd", 0, payload)])
    ev = read_trace_file(path).events[0]
    assert ev.get("suspected") == frozenset({1, 2})
    assert isinstance(ev.get("suspected"), frozenset)
    assert ev.get("knowledge") == {0: (1, "a"), 1: (2, "b")}
    assert isinstance(ev.get("knowledge")[0], tuple)
    assert ev.get("estimate") is NULL
    assert ev.get("path") == (0, 1, 2)
    assert ev.get("peers") == {3, 4} and isinstance(ev.get("peers"), set)
    assert ev.get("note") is None


def test_read_trace_file_carries_provenance(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", 7, 123.5, [(0.0, "crash", 7, {})])
    tf = read_trace_file(path)
    assert tf.node == 7 and tf.epoch_wall == 123.5 and tf.version == 1
    assert tf.path == path and len(tf) == 1
    assert [ev.kind for ev in tf] == ["crash"]


def test_iter_trace_events_streams_header_first(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", 0, 1.0,
                       [(1.0, "crash", 0, {}), (2.0, "heal", None, {})])
    stream = iter_trace_events(path)
    header = next(stream)
    assert header["trace"] == "repro.obs"
    assert [ev.kind for ev in stream] == ["crash", "heal"]


def test_reader_rejects_empty_and_foreign_files(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ConfigurationError, match="empty"):
        read_trace_file(empty)
    foreign = tmp_path / "foreign.jsonl"
    foreign.write_text('{"not": "a trace"}\n')
    with pytest.raises(ConfigurationError, match="not a repro.obs trace"):
        read_trace_file(foreign)


def test_reader_rejects_future_version_and_bad_events(tmp_path):
    versioned = tmp_path / "v99.jsonl"
    versioned.write_text('{"trace":"repro.obs","version":99,"node":0}\n')
    with pytest.raises(ConfigurationError, match="version"):
        read_trace_file(versioned)
    mangled = tmp_path / "bad.jsonl"
    mangled.write_text(
        '{"trace":"repro.obs","version":1,"node":0,'
        '"epoch_wall":0,"epoch_mono":0}\n'
        '{"k":"crash"}\n'
    )
    with pytest.raises(ConfigurationError, match="undecodable"):
        read_trace_file(mangled)


# ---------------------------------------------------------------------------
# as_trace coercion
# ---------------------------------------------------------------------------

def test_as_trace_passthrough_and_coercions(tmp_path):
    sink = MemorySink()
    sink.record(1.0, "crash", 0)
    assert as_trace(sink) is sink  # zero-cost on the live path
    path = write_trace(tmp_path / "t.jsonl", 0, 1.0, [(1.0, "crash", 0, {})])
    for source in (path, str(path), read_trace_file(path),
                   [TraceEvent(1.0, "crash", 0, {})]):
        coerced = as_trace(source)
        assert isinstance(coerced, MemorySink)
        assert coerced.count("crash") == 1


def test_as_trace_rejects_write_only_sinks(tmp_path):
    jsonl = JsonlSink(tmp_path / "t.jsonl", node=0)
    with pytest.raises(ConfigurationError, match="write-only"):
        as_trace(jsonl)
    with pytest.raises(ConfigurationError, match="write-only"):
        as_trace(TeeSink(MemorySink()))
    jsonl.close()
    with pytest.raises(ConfigurationError):
        as_trace(object())


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------

def test_merge_rebases_three_skewed_node_clocks(tmp_path):
    # Three nodes whose wall clocks at trace time zero disagree: node 2's
    # epoch is earliest, so it anchors; 0 and 1 shift forward by their lead.
    write_trace(tmp_path / "node-0.jsonl", 0, 1000.0,
                [(0.0, "crash", 0, {})])
    write_trace(tmp_path / "node-1.jsonl", 1, 1000.5,
                [(0.0, "heal", None, {})])
    write_trace(tmp_path / "node-2.jsonl", 2, 999.7,
                [(0.0, "partition", None, {"groups": ((0,), (1, 2))})])
    report = merge_traces(sorted(tmp_path.glob("node-*.jsonl")))
    assert report.offsets == {"0": pytest.approx(0.3), "1": pytest.approx(0.8),
                              "2": 0.0}
    assert report.skew == {"0": 0.0, "1": 0.0, "2": 0.0}
    assert report.max_skew == 0.0
    # Same instant on every node → merged order follows the epoch offsets.
    assert [ev.kind for ev in report.trace] == ["partition", "crash", "heal"]
    assert [ev.time for ev in report.trace] == \
        [pytest.approx(0.0), pytest.approx(0.3), pytest.approx(0.8)]
    assert "merged 3 events from 3 file(s)" in report.summary()


def test_merge_estimates_hidden_skew_from_handshakes(tmp_path):
    # Headers claim the clocks agree, but node 1 logs the delivery of node
    # 0's message *before* the send — its clock runs 1.0s behind.  The
    # causality pass must shift node 1 forward by exactly that second.
    msg = {"channel": "fd", "src": 0, "dst": 1, "tag": "hb", "round": None}
    write_trace(tmp_path / "node-0.jsonl", 0, 500.0,
                [(5.0, "send", 0, dict(msg))])
    write_trace(tmp_path / "node-1.jsonl", 1, 500.0,
                [(4.0, "deliver", 1, dict(msg))])
    report = merge_traces(sorted(tmp_path.glob("node-*.jsonl")))
    assert report.skew["1"] == pytest.approx(1.0)
    assert report.skew["0"] == 0.0
    assert report.max_skew == pytest.approx(1.0)
    # After correction the deliver no longer precedes its send.
    kinds = [ev.kind for ev in report.trace]
    assert kinds == ["send", "deliver"]
    assert report.trace.events[1].time >= report.trace.events[0].time


def test_merge_loopback_sends_never_drive_skew(tmp_path):
    # A loopback send has no cross-node deliver; pairing it against another
    # node's deliver would invent skew.  The matcher must skip it.
    msg = {"channel": "c", "src": 0, "dst": 0, "tag": "t", "round": None}
    write_trace(tmp_path / "node-0.jsonl", 0, 100.0,
                [(9.0, "send", 0, dict(msg, loopback=True))])
    write_trace(tmp_path / "node-1.jsonl", 1, 100.0,
                [(1.0, "deliver", 0, dict(msg))])
    report = merge_traces(sorted(tmp_path.glob("node-*.jsonl")))
    assert report.max_skew == 0.0


def test_merge_without_rebase_keeps_native_time_bases(tmp_path):
    write_trace(tmp_path / "node-0.jsonl", 0, 1000.0, [(2.0, "crash", 0, {})])
    write_trace(tmp_path / "node-1.jsonl", 1, 2000.0, [(1.0, "heal", None, {})])
    report = merge_traces(sorted(tmp_path.glob("node-*.jsonl")), rebase=False)
    assert report.offsets == {"0": 0.0, "1": 0.0}
    assert [ev.time for ev in report.trace] == [1.0, 2.0]


def test_merge_is_stable_for_simultaneous_events(tmp_path):
    # Equal times and equal epochs: file order, then record order, decides.
    write_trace(tmp_path / "node-0.jsonl", 0, 0.0,
                [(1.0, "crash", 0, {}), (1.0, "heal", None, {})])
    write_trace(tmp_path / "node-1.jsonl", 1, 0.0, [(1.0, "crash", 1, {})])
    report = merge_traces(sorted(tmp_path.glob("node-*.jsonl")))
    assert [(ev.kind, ev.pid) for ev in report.trace] == \
        [("crash", 0), ("heal", None), ("crash", 1)]


def test_merge_accepts_trace_files_and_requires_input(tmp_path):
    path = write_trace(tmp_path / "t.jsonl", None, 1.0, [(0.0, "crash", 0, {})])
    report = merge_traces([read_trace_file(path)])
    assert report.offsets == {"t.jsonl": 0.0}  # anonymous node → filename label
    with pytest.raises(ConfigurationError):
        merge_traces([])
