"""Sinks: MemorySink back-compat, JSONL writer mechanics, tee fan-out."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import JsonlSink, MemorySink, TeeSink, TraceEvent


# ---------------------------------------------------------------------------
# MemorySink — the class historically known as repro.sim.trace.Trace
# ---------------------------------------------------------------------------

def test_sim_trace_shim_still_exports_the_old_names():
    from repro.sim.trace import Trace, TraceEvent as ShimEvent

    assert Trace is MemorySink
    assert ShimEvent is TraceEvent
    from repro.sim import Trace as PackageTrace

    assert PackageTrace is MemorySink


def test_memory_sink_record_select_last_count():
    sink = MemorySink()
    sink.record(1.0, "send", 0, channel="fd", src=0, dst=1)
    sink.record(2.0, "deliver", 1, channel="fd", src=0, dst=1)
    sink.record(3.0, "send", 0, channel="fd", src=0, dst=2)
    assert len(sink) == 3
    assert sink.count("send") == 2
    assert [ev.kind for ev in sink.select(kind="send")] == ["send", "send"]
    assert sink.select(pid=1)[0].kind == "deliver"
    assert sink.select(after=2.5)[0].time == 3.0
    assert sink.last("send").get("dst") == 2
    assert sink.last("deliver", pid=0) is None
    assert sink.end_time == 3.0


def test_memory_sink_kind_filter_is_checked_before_counters():
    sink = MemorySink(kinds={"decide"})
    sink.record(1.0, "send", 0, channel="c", src=0, dst=1)
    sink.record(2.0, "decide", 0, algo="ec", value="v", round=1)
    assert len(sink) == 1
    assert sink.count("send") == 0  # filtered kinds never touch counters
    assert sink.wants("decide") and not sink.wants("send")


def test_memory_sink_disabled_records_nothing():
    sink = MemorySink(enabled=False)
    sink.record(1.0, "crash", 0)
    assert len(sink) == 0 and not sink.wants("crash")


def test_memory_sink_extend_applies_filters():
    sink = MemorySink(kinds={"crash"})
    sink.extend([
        TraceEvent(1.0, "crash", 0, {}),
        TraceEvent(2.0, "send", 0, {"channel": "c", "src": 0, "dst": 1}),
    ])
    assert [ev.kind for ev in sink] == ["crash"]


# ---------------------------------------------------------------------------
# JsonlSink
# ---------------------------------------------------------------------------

def test_jsonl_sink_writes_header_then_events(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, node=2, epoch_wall=100.0, epoch_mono=5.0)
    sink.record(1.5, "fd", 2, channel="fd", suspected=frozenset({0}), trusted=1)
    sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    header = json.loads(lines[0])
    assert header == {"trace": "repro.obs", "version": 1, "node": 2,
                      "epoch_wall": 100.0, "epoch_mono": 5.0}
    event = json.loads(lines[1])
    assert event["t"] == 1.5 and event["k"] == "fd" and event["p"] == 2
    assert event["d"]["suspected"] == {"!f": [0]}


def test_jsonl_sink_header_is_lazy_but_close_writes_it(tmp_path):
    path = tmp_path / "empty.jsonl"
    sink = JsonlSink(path, node=0, epoch_wall=1.0, epoch_mono=1.0)
    assert path.read_text() == ""  # nothing until first event or close
    sink.close()
    sink.close()  # idempotent
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["node"] == 0


def test_jsonl_sink_rebase_epoch_forbidden_after_first_event(tmp_path):
    sink = JsonlSink(tmp_path / "t.jsonl", node=0)
    sink.rebase_epoch()  # fine before any event
    sink.record(0.0, "crash", 0)
    with pytest.raises(ConfigurationError):
        sink.rebase_epoch()
    sink.close()


def test_jsonl_sink_is_line_buffered_before_close(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, node=0, epoch_wall=0.0, epoch_mono=0.0)
    sink.record(1.0, "crash", 0)
    # Not closed — a kill -9 now must still leave the event on disk.
    assert len(path.read_text().splitlines()) == 2
    sink.close()


def test_jsonl_sink_kind_filter_and_counts(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, node=0, kinds={"decide"})
    assert sink.wants("decide") and not sink.wants("send")
    sink.record(1.0, "send", 0, channel="c", src=0, dst=1)
    sink.record(2.0, "decide", 0, algo="ec", value="v", round=1)
    sink.close()
    assert sink.events_written == 1
    assert not sink.wants("decide")  # closed sinks want nothing


def test_jsonl_sink_record_after_close_is_dropped(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlSink(path, node=0)
    sink.close()
    sink.record(1.0, "crash", 0)
    assert sink.events_written == 0
    assert len(path.read_text().splitlines()) == 1


def test_jsonl_sink_accepts_open_file_object(tmp_path):
    path = tmp_path / "t.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        sink = JsonlSink(fh, node=None, epoch_wall=0.0, epoch_mono=0.0)
        sink.record(1.0, "heal", None)
        sink.close()
        fh.write("")  # close() must not close a file it does not own
    assert json.loads(path.read_text().splitlines()[0])["node"] is None


# ---------------------------------------------------------------------------
# TeeSink
# ---------------------------------------------------------------------------

def test_tee_fans_out_and_children_keep_their_filters(tmp_path):
    memory = MemorySink()
    decides = MemorySink(kinds={"decide"})
    tee = TeeSink(memory, decides)
    tee.record(1.0, "send", 0, channel="c", src=0, dst=1)
    tee.record(2.0, "decide", 0, algo="ec", value="v", round=1)
    assert len(memory) == 2 and len(decides) == 1
    # wants() is the union, so caller guards stay correct for any mix.
    assert tee.wants("send") and tee.wants("decide")
    only = TeeSink(decides)
    assert not only.wants("send")


def test_tee_record_event_and_close_propagate(tmp_path):
    path = tmp_path / "t.jsonl"
    jsonl = JsonlSink(path, node=0, epoch_wall=0.0, epoch_mono=0.0)
    memory = MemorySink()
    tee = TeeSink(memory, jsonl)
    tee.record_event(TraceEvent(1.0, "crash", 0, {}))
    tee.close()
    assert len(memory) == 1
    assert len(path.read_text().splitlines()) == 2


def test_tee_needs_at_least_one_sink():
    with pytest.raises(ConfigurationError):
        TeeSink()
