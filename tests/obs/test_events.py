"""The event-schema registry: lookups, validation, conflicts, rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EVENT_SCHEMAS,
    TraceEvent,
    known_kinds,
    register_event_kind,
    schema_for,
    schema_table,
    validate_event,
)


def test_builtin_kinds_cover_the_substrate_and_protocols():
    kinds = known_kinds()
    for kind in ("send", "deliver", "drop", "crash", "fd",
                 "propose", "decide", "round", "phase"):
        assert kind in kinds
    assert list(kinds) == sorted(kinds)


def test_schema_for_known_and_unknown():
    send = schema_for("send")
    assert send is not None
    assert set(send.required) == {"channel", "src", "dst"}
    assert "loopback" in send.optional
    assert schema_for("no-such-kind") is None


def test_validate_event_conforming():
    ev = TraceEvent(1.0, "fd", 0, {
        "channel": "fd", "suspected": frozenset(), "trusted": 1,
    })
    assert validate_event(ev) == []


def test_validate_event_missing_required_key():
    ev = TraceEvent(1.0, "fd", 0, {"channel": "fd"})
    problems = validate_event(ev)
    assert len(problems) == 1
    assert "suspected" in problems[0] and "trusted" in problems[0]


def test_validate_event_unknown_kind():
    problems = validate_event(TraceEvent(1.0, "fd-output", 0, {}))
    assert len(problems) == 1
    assert "unknown" in problems[0]
    assert "fd-output" in problems[0]


def test_validate_tolerates_extra_keys():
    ev = TraceEvent(1.0, "crash", 2, {"annotation": "scripted"})
    assert validate_event(ev) == []


def test_reregistration_identical_is_idempotent():
    before = dict(EVENT_SCHEMAS)
    schema = register_event_kind(
        "send", required=("channel", "src", "dst"),
        optional=("tag", "round", "loopback"),
        doc="different doc text is fine",
    )
    assert schema is EVENT_SCHEMAS["send"]
    assert dict(EVENT_SCHEMAS) == before


def test_reregistration_conflicting_contract_raises():
    with pytest.raises(ConfigurationError):
        register_event_kind("send", required=("channel",))


def test_register_new_kind_then_validate(monkeypatch):
    monkeypatch.delitem(EVENT_SCHEMAS, "x-test", raising=False)
    register_event_kind("x-test", required=("value",), doc="test-only")
    try:
        assert validate_event(TraceEvent(0.0, "x-test", None, {"value": 1})) == []
        assert validate_event(TraceEvent(0.0, "x-test", None, {})) != []
    finally:
        del EVENT_SCHEMAS["x-test"]


def test_schema_table_markdown_lists_every_kind():
    table = schema_table("markdown")
    lines = table.splitlines()
    assert lines[0].startswith("| kind")
    assert set(lines[1]) <= {"|", "-"}
    for kind in known_kinds():
        assert f"`{kind}`" in table


def test_schema_table_rst_and_unknown_format():
    rst = schema_table("rst")
    assert "``send``" in rst
    with pytest.raises(ConfigurationError):
        schema_table("html")


def test_trace_event_get_and_immutability():
    ev = TraceEvent(3.0, "drop", 1, {"reason": "link"})
    assert ev.get("reason") == "link"
    assert ev.get("missing", "dflt") == "dflt"
    with pytest.raises(AttributeError):
        ev.time = 4.0
