"""JSONL round-trip parity: shipped-and-merged traces verdict-identical.

The scenario is the sim↔net parity scenario (n = 3, fixed 1.0 delays,
leader p0 killed at t = 2.0, all proposals in flight), run once on the
loopback runtime with per-node JSONL shipping enabled.  Every analysis
verdict — FD class properties, consensus outcome, consensus properties —
must be identical whether computed from the live in-memory trace or from
the three per-node files merged offline.  This is the contract that makes
postmortem trace shipping trustworthy: the merger must not lose, reorder,
or corrupt anything the checkers look at.
"""

import pytest

from repro.analysis import (
    check_consensus,
    check_fd_class,
    extract_outcome,
    qos_report,
)
from repro.fd import EVENTUALLY_CONSISTENT
from repro.net import LocalCluster, attach_standard_stack
from repro.obs import merge_traces
from repro.sim import FixedDelay

PERIOD, TIMEOUT0, INCREMENT = 5.0, 12.0, 5.0
KILL_AT, HORIZON = 2.0, 400.0


@pytest.fixture(scope="module")
def shipped_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("traces")
    cluster = LocalCluster(
        n=3, transport="loopback", clock="virtual", seed=0,
        trace_out=out,
    )
    # Fixed 1.0 delays on every link: a zero-loss "storm" carrying the
    # delay model, on the always-on fault plan.
    cluster.plan.storm(0.0, delay=FixedDelay(1.0))
    stacks = attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=TIMEOUT0, timeout_increment=INCREMENT,
    )
    cluster.start_virtual()
    for p in stacks["consensus"]:
        p.propose(f"v{p.pid}")
    cluster.schedule_kill(0, KILL_AT)
    cluster.run_virtual(until=HORIZON)
    cluster.close_traces()  # virtual mode has no stop(); flush JSONL now
    report = merge_traces(sorted(out.glob("node-*.jsonl")))
    return cluster, out, report


def test_one_file_per_node_each_a_valid_trace(shipped_run):
    cluster, out, report = shipped_run
    files = sorted(out.glob("node-*.jsonl"))
    assert [f.name for f in files] == \
        ["node-0.jsonl", "node-1.jsonl", "node-2.jsonl"]
    assert [tf.node for tf in report.files] == [0, 1, 2]
    # Virtual runs share one clock: zero epochs, so no rebase, no skew.
    assert report.offsets == {"0": 0.0, "1": 0.0, "2": 0.0}
    assert report.max_skew == 0.0


def test_merged_stream_is_the_in_memory_stream(shipped_run):
    cluster, _, report = shipped_run
    key = lambda ev: (ev.time, ev.kind, ev.pid, sorted(ev.data.items()))
    assert sorted(key(ev) for ev in report.trace.events) == \
        sorted(key(ev) for ev in cluster.trace.events)


def test_consensus_verdicts_identical(shipped_run):
    cluster, _, report = shipped_run
    live = extract_outcome(cluster.trace, "ec")
    merged = extract_outcome(report.trace, "ec")
    assert live.decisions == merged.decisions == {1: "v1", 2: "v1"}
    live_checks = check_consensus(live, cluster.correct_pids)
    merged_checks = check_consensus(merged, cluster.correct_pids)
    assert live_checks == merged_checks
    assert all(merged_checks.values())


def test_fd_class_verdicts_identical(shipped_run):
    cluster, _, report = shipped_run
    live = check_fd_class(
        cluster.trace, EVENTUALLY_CONSISTENT, cluster.correct_pids,
        end_time=HORIZON,
    )
    merged = check_fd_class(
        report.trace, EVENTUALLY_CONSISTENT, cluster.correct_pids,
        end_time=HORIZON,
    )
    assert set(live) == set(merged)
    for name in live:
        assert live[name].ok == merged[name].ok, name
        assert live[name].stabilized_at == merged[name].stabilized_at, name
    assert all(check.ok for check in merged.values())


def test_qos_verdicts_identical(shipped_run):
    cluster, _, report = shipped_run
    live = qos_report(cluster.trace, period=PERIOD)
    merged = qos_report(report.trace, period=PERIOD)
    assert live.detection == merged.detection
    assert live.mistakes == merged.mistakes
    assert live.leader_stabilized_at == merged.leader_stabilized_at
    assert live.stable_leader == merged.stable_leader
    assert live.cost_window == merged.cost_window
    assert set(live.message_cost) == set(merged.message_cost)
    for ch, cost in live.message_cost.items():
        assert merged.message_cost[ch] == pytest.approx(cost), ch
    assert live.bound_ok is merged.bound_ok is True
    # The scenario's known answers: p0 crashes at t=2 and is detected;
    # the survivors re-stabilize on a correct leader.
    assert live.detection[0] is not None
    assert live.stable_leader in {1, 2}


def test_combined_file_mode_ships_one_checkable_stream(tmp_path):
    out = tmp_path / "run.jsonl"
    cluster = LocalCluster(
        n=3, transport="loopback", clock="virtual", seed=0,
        trace_out=out,
    )
    cluster.plan.storm(0.0, delay=FixedDelay(1.0))
    stacks = attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=TIMEOUT0, timeout_increment=INCREMENT,
    )
    cluster.start_virtual()
    for p in stacks["consensus"]:
        p.propose(f"v{p.pid}")
    cluster.schedule_kill(0, KILL_AT)
    cluster.run_virtual(until=HORIZON)
    cluster.close_traces()
    report = merge_traces([out])
    assert len(report.trace) == len(cluster.trace)
    assert extract_outcome(report.trace, "ec").decisions == {1: "v1", 2: "v1"}
