"""The live telemetry plane (:mod:`repro.obs.live`).

Three layers under test:

* :func:`parse_ship_address` — the ``--ship-to`` / ``--connect`` spellings.
* :class:`StreamingSink` — never blocks the node it observes: bounded
  buffer with counted drops, kind filtering, reconnect-with-backoff, and
  at-most-once accounting across torn connections.
* :class:`IncrementalQoS` — the online twin of
  :func:`repro.analysis.qos.qos_report`.  The headline contract is exact
  report equality (``==`` on the dataclass) against the offline analyzer
  over the committed example traces *and* over synthetic streams that
  exercise the crash-truncation rules, where live ingestion is hardest:
  the crash that reclassifies a suspicion can arrive later in the stream
  than the ``fd`` event that opened it.
* :class:`LiveCollector` — multi-stream ingestion: epoch rebasing onto
  the first stream's clock, payload round-tripping, and torn-stream
  accounting for garbage and truncated frames.
"""

import asyncio
from pathlib import Path

import pytest

from repro.analysis import qos_report
from repro.analysis.qos import Mistake
from repro.errors import ConfigurationError
from repro.net.frame import write_frame
from repro.obs import MemorySink, merge_traces
from repro.obs.live import (
    IncrementalQoS,
    LiveCollector,
    StreamingSink,
    parse_ship_address,
)

EXAMPLE_TRACES = sorted(
    (Path(__file__).parents[2] / "examples" / "traces").glob("node-*.jsonl")
)


# ------------------------------------------------------------ addresses

def test_parse_ship_address_accepts_the_usual_spellings():
    assert parse_ship_address("10.0.0.1:7000") == ("10.0.0.1", 7000)
    assert parse_ship_address(":7000") == ("127.0.0.1", 7000)
    assert parse_ship_address("7000") == ("127.0.0.1", 7000)
    assert parse_ship_address(("", 7000)) == ("127.0.0.1", 7000)
    assert parse_ship_address(("collector", 7000)) == ("collector", 7000)


def test_parse_ship_address_rejects_garbage():
    for bad in ("", "host:", "host:port", "1.2.3.4"):
        with pytest.raises(ConfigurationError):
            parse_ship_address(bad)


# ------------------------------------------------------------ the shipper

def _record_send(sink, t, pid=0):
    sink.record(t, "send", pid, channel="fd", src=pid, dst=1 - pid)


def test_full_buffer_drops_and_counts_instead_of_blocking():
    sink = StreamingSink("127.0.0.1:1", max_buffer=4)
    for i in range(6):
        _record_send(sink, float(i))
    assert sink.buffered == 4
    assert sink.events_dropped == 2


def test_sync_close_drops_the_backlog_and_counts_it():
    sink = StreamingSink("127.0.0.1:1", max_buffer=4)
    for i in range(6):
        _record_send(sink, float(i))
    sink.close()
    assert sink.buffered == 0
    assert sink.events_dropped == 6
    _record_send(sink, 9.0)  # closed sinks ignore further records
    assert sink.buffered == 0 and sink.events_dropped == 6


def test_kind_filter_applies_before_buffering():
    sink = StreamingSink("127.0.0.1:1", kinds=("fd",))
    assert sink.wants("fd") and not sink.wants("send")
    _record_send(sink, 0.0)
    sink.record(0.0, "fd", 0, channel="fd", suspected=(), trusted=0)
    assert sink.buffered == 1
    assert sink.events_dropped == 0  # filtered, not dropped


def test_shipper_reconnects_after_a_torn_stream():
    """Kill the first connection under the shipper mid-stream: it must
    reconnect, count the tear, and keep at-most-once accounting exact
    (every recorded event is shipped, dropped, or still buffered)."""

    async def scenario():
        connections = []

        async def handle(reader, writer):
            connections.append(writer)
            if len(connections) == 1:
                writer.close()  # slam the door on the first stream
                return
            while await reader.read(4096):
                pass  # second stream: consume until EOF

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        sink = StreamingSink(
            ("127.0.0.1", port), node=0,
            flush_interval=0.005, backoff=0.01, max_backoff=0.05,
        )
        await sink.start()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        recorded = 0
        while sink.reconnects == 0 and loop.time() < deadline:
            _record_send(sink, float(recorded))
            recorded += 1
            await asyncio.sleep(0.005)
        _record_send(sink, float(recorded))
        recorded += 1
        await sink.aclose()
        server.close()
        await server.wait_closed()
        return sink, len(connections), recorded

    sink, connections, recorded = asyncio.run(scenario())
    assert sink.reconnects >= 1
    assert connections >= 2
    assert sink.events_shipped > 0
    assert sink.events_shipped + sink.events_dropped + sink.buffered \
        == recorded


# ------------------------------------------------- online QoS: parity

@pytest.fixture(scope="module")
def example_merge():
    return merge_traces(EXAMPLE_TRACES)


@pytest.mark.parametrize("period", [None, 5.0, 0.5])
def test_incremental_qos_matches_offline_on_example_traces(
    example_merge, period
):
    """Field-for-field report equality with the offline analyzer over the
    committed multi-node example traces (which include a crash)."""
    online = IncrementalQoS()
    for event in example_merge.trace:
        online.observe_event(event)
    offline = qos_report(example_merge.trace, period=period)
    assert online.report(period=period) == offline
    assert online.event_count == len(example_merge.trace.events)


def _both(rows, period=None):
    """Feed identical synthetic streams to both analyzers; assert parity
    and hand back the (shared) report."""
    online = IncrementalQoS()
    offline = MemorySink()
    for t, kind, pid, data in rows:
        online.observe(t, kind, pid, **data)
        offline.record(t, kind, pid, **data)
    report = online.report(period=period)
    assert report == qos_report(offline, period=period)
    return report


_FD = "fd"


def _fd(t, observer, suspected, trusted):
    return (t, _FD, observer, {
        "channel": "fd",
        "suspected": frozenset(suspected),
        "trusted": trusted,
    })


def test_crash_arriving_later_in_the_stream_voids_the_mistake():
    # Observer 1 suspects 2 at t=2.0; the crash record (t=1.0, from
    # another stream) only arrives afterwards.  The suspicion was
    # correct all along: no mistake may survive report-time screening.
    report = _both([
        _fd(0.5, 1, (), 0),
        _fd(2.0, 1, (2,), 0),
        (1.0, "crash", 2, {}),
        _fd(6.0, 1, (2,), 0),
    ])
    assert report.mistakes == []
    assert report.crashes == {2: 1.0}


def test_crash_mid_mistake_truncates_it_at_the_crash():
    # Suspecting a live process is a mistake from t=1.0 — but once the
    # suspect dies at t=3.0 the suspicion becomes correct, so the
    # mistake ends there, not at the t=5.0 retraction.
    report = _both([
        _fd(0.0, 1, (), 0),
        _fd(1.0, 1, (2,), 0),
        (3.0, "crash", 2, {}),
        _fd(5.0, 1, (), 0),
        _fd(6.0, 1, (), 0),
    ])
    assert report.mistakes == [Mistake(1, 2, 1.0, 3.0)]


def test_never_retracted_mistake_closes_at_the_crash():
    report = _both([
        _fd(0.0, 1, (), 0),
        _fd(1.0, 1, (2,), 0),
        (3.0, "crash", 2, {}),
        _fd(6.0, 1, (2,), 0),
    ])
    assert report.mistakes == [Mistake(1, 2, 1.0, 3.0)]
    assert report.unresolved_mistakes == 0


def test_never_retracted_mistake_without_a_crash_stays_open():
    report = _both([
        _fd(0.0, 1, (), 0),
        _fd(1.0, 1, (2,), 0),
        _fd(6.0, 1, (2,), 0),
    ])
    assert report.mistakes == [Mistake(1, 2, 1.0, None)]
    assert report.unresolved_mistakes == 1


def test_message_cost_counts_match_with_interleaved_sends():
    rows = [_fd(0.0, 1, (), 0)]
    for i in range(40):
        t = 0.1 + i * 0.1
        rows.append((t, "send", i % 3, {
            "channel": "fdp", "src": i % 3, "dst": (i + 1) % 3,
        }))
    rows.append(_fd(4.2, 1, (), 0))
    report = _both(rows, period=0.5)
    assert report.message_cost["fdp"] is not None
    assert report.bound_ok is not None


def test_snapshot_tracks_the_running_state():
    online = IncrementalQoS()
    for t, kind, pid, data in [
        _fd(0.0, 1, (), 0),
        _fd(1.0, 1, (2,), 0),
        (2.0, "crash", 0, {}),
        (2.5, "send", 1, {"channel": "fdp", "src": 1, "dst": 2}),
        (3.0, "span.reply", 1, {"span": "c1.1", "status": "ok"}),
    ]:
        online.observe(t, kind, pid, **data)
    snap = online.snapshot()
    assert snap["n"] == 3
    assert snap["end_time"] == 3.0
    assert snap["events"] == 5
    assert snap["crashes"] == {0: 2.0}
    assert snap["suspected"] == {1: [2]}
    assert snap["open_mistakes"] == 1 and snap["closed_mistakes"] == 0
    assert snap["span_replies"] == 1
    assert snap["sends"] == {"fdp": 1}
    assert snap["kinds"]["fd"] == 2


# ------------------------------------------------------------ collector

def _wait_until(predicate, timeout=5.0):
    async def poll():
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not predicate() and loop.time() < deadline:
            await asyncio.sleep(0.01)
    return poll()


def test_ship_and_ingest_end_to_end():
    async def scenario():
        collector = LiveCollector(retain=True)
        address = await collector.bind()
        sink = StreamingSink(address, node=0, flush_interval=0.005)
        sink.rebase_epoch()
        await sink.start()
        sink.record(0.0, "fd", 1, channel="fd", suspected=(2,), trusted=0)
        sink.record(1.0, "crash", 2)
        sink.record(2.0, "send", 0, channel="fdp", src=0, dst=1)
        await _wait_until(lambda: collector.events_ingested >= 3)
        # The hello froze the epoch: rebasing now must be refused.
        with pytest.raises(ConfigurationError):
            sink.rebase_epoch()
        await sink.aclose()
        await _wait_until(lambda: collector.open_streams == 0)
        await collector.close()
        return collector, sink

    collector, sink = asyncio.run(scenario())
    assert sink.events_shipped == 3 and sink.events_dropped == 0
    assert collector.events_ingested == 3
    assert collector.streams_seen == 1 and collector.torn_streams == 0
    # Payloads round-trip through the wire encoding, tuples included.
    fd = next(e for e in collector.trace if e.kind == "fd")
    assert fd.get("suspected") == (2,) and fd.get("trusted") == 0
    # ... and the online QoS folded them in as they landed.
    assert collector.qos.event_count == 3
    assert collector.qos.snapshot()["crashes"] == {2: 1.0}
    # Lifecycle events bracket the retained stream.
    kinds = [e.kind for e in collector.trace]
    assert kinds[0] == "live.connect" and kinds[-1] == "live.disconnect"


def test_streams_are_rebased_onto_the_first_epoch():
    """A node whose epoch is 7.5s behind the first stream's lands 7.5s
    earlier on the collector's shared axis — same rule as the offline
    merger's header rebasing."""

    async def scenario():
        collector = LiveCollector(retain=True)
        address = await collector.bind()
        first = StreamingSink(address, node=0, flush_interval=0.005)
        second = StreamingSink(address, node=1, flush_interval=0.005)
        second.epoch_wall = first.epoch_wall + 7.5
        await first.start()
        first.record(1.0, "send", 0, channel="fd", src=0, dst=1)
        await _wait_until(lambda: collector.events_ingested >= 1)
        await second.start()  # strictly after: deterministic base stream
        second.record(1.0, "send", 1, channel="fd", src=1, dst=0)
        await _wait_until(lambda: collector.events_ingested >= 2)
        await first.aclose()
        await second.aclose()
        await collector.close()
        return collector

    collector = asyncio.run(scenario())
    times = {e.pid: e.time for e in collector.trace if e.kind == "send"}
    assert times[0] == 1.0
    assert times[1] == pytest.approx(8.5)


def test_collector_counts_garbage_frames_as_torn_streams():
    async def scenario():
        collector = LiveCollector()
        await collector.bind()
        _, writer = await asyncio.open_connection(
            "127.0.0.1", collector.port
        )
        write_frame(writer, b"this is not json")
        await writer.drain()
        await _wait_until(lambda: collector.torn_streams >= 1)
        writer.close()
        await collector.close()
        return collector

    collector = asyncio.run(scenario())
    assert collector.torn_streams == 1
    assert collector.streams_seen == 1
    assert collector.open_streams == 0
    assert collector.events_ingested == 0


def test_collector_survives_a_mid_frame_truncation():
    """A stream dying mid-frame (the live analog of a crash-truncated
    JSONL tail) is counted torn; events already landed stay counted."""

    async def scenario():
        collector = LiveCollector()
        await collector.bind()
        _, writer = await asyncio.open_connection(
            "127.0.0.1", collector.port
        )
        hello = (b'{"trace": "repro.obs.live", "version": 1, "node": 0,'
                 b' "epoch_wall": 100.0, "epoch_mono": 0.0}')
        write_frame(writer, hello)
        write_frame(
            writer,
            b'[[0.5, "send", 0, {"channel": "fd", "src": 0, "dst": 1}]]',
        )
        writer.write(b"\x00\x00\x10")  # length prefix promising a frame...
        await writer.drain()
        writer.close()  # ...that never comes
        await _wait_until(lambda: collector.open_streams == 0)
        await collector.close()
        return collector

    collector = asyncio.run(scenario())
    assert collector.events_ingested == 1
    assert collector.torn_streams == 1
