"""Smoke tests: every shipped example runs clean end to end.

Each example asserts its own correctness internally (they end with checks
like "all replicas hold identical stores"), so a zero exit code is a real
signal, not just "didn't crash".
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

# Minutes-scale narrated runs (and the multi-process scenario, which
# spends real wall seconds by design); the fast tier (-m "not slow")
# skips them.
SLOW_EXAMPLES = {"partition_and_recovery", "proc_cluster"}


@pytest.mark.parametrize(
    "example",
    [
        pytest.param(
            p,
            marks=[pytest.mark.slow] if p.stem in SLOW_EXAMPLES else [],
        )
        for p in EXAMPLES
    ],
    ids=lambda p: p.stem,
)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_example_inventory():
    """The deliverable requires a quickstart plus >= 2 domain scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
