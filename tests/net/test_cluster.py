"""LocalCluster lifecycle, the standard stack, and the cluster CLI."""

import asyncio

import pytest

from repro.analysis import check_consensus, extract_outcome
from repro.cli import main
from repro.errors import ConfigurationError
from repro.net import LocalCluster, attach_standard_stack

SIM_SCALE = dict(period=5.0, initial_timeout=12.0, timeout_increment=5.0)


# ------------------------------------------------------------- construction
def test_cluster_validates_configuration():
    with pytest.raises(ConfigurationError):
        LocalCluster(n=0)
    with pytest.raises(ConfigurationError):
        LocalCluster(n=3, transport="carrier-pigeon")
    with pytest.raises(ConfigurationError):
        LocalCluster(n=3, clock="sundial")
    with pytest.raises(ConfigurationError):
        LocalCluster(n=3, transport="udp", clock="virtual")


def test_cluster_refuses_double_start():
    cluster = LocalCluster(n=2, clock="virtual")
    cluster.start_virtual()
    with pytest.raises(ConfigurationError):
        cluster.start_virtual()


def test_virtual_helpers_refuse_wall_clusters():
    cluster = LocalCluster(n=2)
    with pytest.raises(ConfigurationError):
        cluster.start_virtual()
    with pytest.raises(ConfigurationError):
        cluster.run_virtual(until=1.0)


def test_attach_standard_stack_shapes():
    cluster = LocalCluster(n=3, clock="virtual")
    stacks = attach_standard_stack(cluster, **SIM_SCALE)
    assert sorted(stacks) == [
        "consensus", "fd", "fdp", "omega", "rb", "suspects"]
    assert all(len(components) == 3 for components in stacks.values())
    with pytest.raises(ConfigurationError):
        attach_standard_stack(
            LocalCluster(n=3, clock="virtual"), suspects="psychic")


# ------------------------------------------------------- virtual full stack
def test_virtual_cluster_survives_killed_leader():
    cluster = LocalCluster(n=5, clock="virtual", seed=3)
    stacks = attach_standard_stack(cluster, **SIM_SCALE)
    cluster.start_virtual()
    for p in stacks["consensus"]:
        p.propose(f"v{p.pid}")
    cluster.schedule_kill(0, 30.0)
    cluster.run_virtual(until=2000.0)
    assert cluster.correct_pids == frozenset({1, 2, 3, 4})
    outcome = extract_outcome(cluster.trace, "ec")
    assert set(outcome.decisions) >= cluster.correct_pids
    assert all(check_consensus(outcome, cluster.correct_pids).values())
    for detector in stacks["fd"][1:]:
        assert detector.trusted() == 1
        assert 0 in detector.suspected()


def test_transformation_tracks_the_kill():
    cluster = LocalCluster(n=3, clock="virtual")
    stacks = attach_standard_stack(cluster, with_consensus=False, **SIM_SCALE)
    cluster.start_virtual()
    cluster.schedule_kill(2, 40.0)
    cluster.run_virtual(until=1500.0)
    # The Fig. 2 output must show the kill with strong completeness.
    for fdp in stacks["fdp"][:2]:
        assert 2 in fdp.suspected()


# ------------------------------------------------------------ wall loopback
def test_wall_clock_loopback_cluster_decides():
    async def scenario():
        cluster = LocalCluster(n=3, transport="loopback", seed=1)
        stacks = attach_standard_stack(
            cluster, period=0.02, initial_timeout=0.06,
            timeout_increment=0.02)
        await cluster.start()
        await cluster.run(0.15)
        for p in stacks["consensus"]:
            p.propose(f"v{p.pid}")
        decided = await cluster.run_until(
            lambda: all(p.decided for p in stacks["consensus"]), timeout=10.0)
        await cluster.stop()
        assert decided
        outcome = extract_outcome(cluster.trace, "ec")
        assert all(check_consensus(outcome, cluster.correct_pids).values())

    asyncio.run(scenario())


def test_udp_cluster_survives_killed_leader_end_to_end():
    async def scenario():
        cluster = LocalCluster(n=5, transport="udp", seed=7)
        stacks = attach_standard_stack(
            cluster, period=0.05, initial_timeout=0.12,
            timeout_increment=0.05)
        await cluster.start()
        await cluster.run(0.4)  # let the leader announce itself
        cluster.kill(0)
        for p in stacks["consensus"]:
            if not p.crashed:
                p.propose(f"v{p.pid}")
        decided = await cluster.run_until(
            lambda: all(p.decided for p in stacks["consensus"]
                        if not p.crashed),
            timeout=20.0)
        await cluster.stop()
        assert decided
        outcome = extract_outcome(cluster.trace, "ec")
        assert set(outcome.decisions) == {1, 2, 3, 4}
        assert all(check_consensus(outcome, cluster.correct_pids).values())
        assert sum(h.transport.frames_sent for h in cluster.hosts) > 0

    asyncio.run(scenario())


# ----------------------------------------------------------------- the CLI
def test_cli_cluster_virtual_loopback(capsys):
    code = main(["cluster", "--nodes", "3", "--transport", "loopback",
                 "--virtual"])
    out = capsys.readouterr().out
    assert code == 0
    assert "killed leader p0" in out
    assert "result: OK" in out
    assert "'termination': True" in out
    assert "crash detection latency" in out


def test_cli_cluster_virtual_requires_loopback(capsys):
    code = main(["cluster", "--nodes", "3", "--transport", "udp",
                 "--virtual"])
    assert code == 2
    assert "loopback" in capsys.readouterr().err
