"""Wire codec round-trips: every payload shape the protocols produce."""

import pytest

from repro.consensus.ec_consensus import NULL
from repro.errors import ConfigurationError
from repro.net.codec import (
    Codec,
    CodecError,
    JsonCodec,
    MsgpackCodec,
    default_codec,
)
from repro.sim.message import Message


def _codecs():
    codecs = [JsonCodec()]
    try:
        codecs.append(MsgpackCodec())
    except ConfigurationError:
        pass  # host image has no msgpack; JSON is the contract either way
    return codecs


# Shapes drawn from the actual protocols: heartbeats, ring knowledge maps
# (int keys, tuple values), suspect frozensets, consensus phase tuples with
# the NULL estimate sentinel, RB metadata.
PAYLOADS = [
    None,
    True,
    0,
    -17,
    3.25,
    "HB",
    ("HB", 42),
    ("EST", 3, "value", 7),
    ("PING", {0: (5, 10.0), 1: (6, 12.5), 2: (1, 0.0)}),
    frozenset({1, 2, 4}),
    {"nested": [(1, 2), {3: frozenset({"a", "b"})}]},
    ("PROP", 2, NULL, -1),
    {(0, 1): "pair-keyed"},
    [],
    {},
    frozenset(),
    ((), (((),),)),
]


@pytest.mark.parametrize("codec", _codecs(), ids=lambda c: c.name)
@pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
def test_payload_round_trip_exact(codec, payload):
    decoded = codec.decode_payload(codec.encode_payload(payload))
    assert decoded == payload
    assert type(decoded) is type(payload)


@pytest.mark.parametrize("codec", _codecs(), ids=lambda c: c.name)
def test_null_round_trips_as_the_singleton(codec):
    decoded = codec.decode_payload(codec.encode_payload(("EST", 1, NULL, -1)))
    assert decoded[2] is NULL


@pytest.mark.parametrize("codec", _codecs(), ids=lambda c: c.name)
def test_tag_shaped_user_dicts_are_not_misread(codec):
    # A user payload that *looks* like our tag encoding must survive.
    tricky = {"!t": [1, 2, 3]}
    assert codec.decode_payload(codec.encode_payload(tricky)) == tricky


@pytest.mark.parametrize("codec", _codecs(), ids=lambda c: c.name)
def test_message_envelope_round_trip(codec):
    msg = Message(
        src=2, dst=0, channel="fd.suspects",
        payload=("PING", {0: (1, 2.0)}),
        send_time=12.5, tag="stubborn", round=4,
    )
    out = codec.decode_message(codec.encode_message(msg))
    assert (out.src, out.dst, out.channel) == (2, 0, "fd.suspects")
    assert out.payload == ("PING", {0: (1, 2.0)})
    assert out.send_time == 12.5
    assert out.tag == "stubborn" and out.round == 4


@pytest.mark.parametrize("codec", _codecs(), ids=lambda c: c.name)
def test_garbage_bytes_raise_codec_error(codec):
    for garbage in (b"", b"\xff\x00garbage", b"[1,"):
        with pytest.raises(CodecError):
            codec.decode_message(garbage)


def test_valid_json_bad_envelope_raises_codec_error():
    with pytest.raises(CodecError):
        JsonCodec().decode_message(b'{"unexpected": "shape"}')


def test_unencodable_payload_raises_codec_error():
    with pytest.raises(CodecError):
        JsonCodec().encode_payload(object())


def test_default_codec_always_available():
    assert isinstance(default_codec(), Codec)
    assert default_codec(prefer="json").name == "json"
    with pytest.raises(ConfigurationError):
        default_codec(prefer="protobuf")


def test_msgpack_is_gated_not_installed():
    # Whichever world we run in, the constructor either works or explains
    # itself; it must never trigger an install or an ImportError escape.
    try:
        codec = MsgpackCodec()
    except ConfigurationError as exc:
        assert "msgpack" in str(exc)
    else:
        assert codec.name == "msgpack"
