"""JSON ↔ msgpack cross-parity: both codecs must tell the same story.

Three contracts pinned here:

* **semantic parity** — for every payload shape the protocols produce
  (including the RSM's NOOP / bare-command / batch slot values and the
  KV service's request/reply frames), decoding a msgpack encoding yields
  exactly what decoding the JSON encoding yields;
* **canonical bytes** — the pure-Python packer emits the spec's smallest
  representation, pinned against known byte vectors, so frames from a
  pure-Python node and a C-extension node are byte-interchangeable;
* **implementation interchangeability** — when the C extension is
  installed, pure and ext encodings of the whole corpus are identical
  bytes and each decodes the other's output (skipped otherwise).
"""

import asyncio

import pytest

from repro.consensus.ec_consensus import NULL
from repro.consensus.multi import BATCH, NOOP
from repro.net.codec import (
    JsonCodec,
    MsgpackCodec,
    msgpack_extension_available,
    wire_preferences,
)
from repro.net import mpack
from repro.sim.message import Message
from repro.svc.protocol import Reply, Request, encode_frame, read_frame

JSON = JsonCodec()
MSGPACK = MsgpackCodec()

#: Every payload shape a protocol puts on the wire, including the RSM's
#: three slot-value shapes (NOOP, bare command, batch).
PAYLOADS = [
    None,
    True,
    0,
    -17,
    3.25,
    "HB",
    ("HB", 42),
    ("EST", 3, "value", 7),
    ("PING", {0: (5, 10.0), 1: (6, 12.5), 2: (1, 0.0)}),
    frozenset({1, 2, 4}),
    {"nested": [(1, 2), {3: frozenset({"a", "b"})}]},
    ("PROP", 2, NULL, -1),
    {(0, 1): "pair-keyed"},
    [],
    {},
    frozenset(),
    ((), (((),),)),
    NOOP,
    (0, 7, {"op": "put", "key": "k1", "value": 3}),
    (BATCH, ((0, 0, "a"), (1, 4, {"op": "get", "key": "k"}))),
    ("CMD", (2, 9, ["x", 1.5, None])),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
def test_cross_codec_payload_parity(payload):
    via_json = JSON.decode_payload(JSON.encode_payload(payload))
    via_msgpack = MSGPACK.decode_payload(MSGPACK.encode_payload(payload))
    assert via_msgpack == via_json == payload
    assert type(via_msgpack) is type(via_json) is type(payload)


@pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
def test_cross_codec_message_parity(payload):
    msg = Message(
        src=1, dst=2, channel="rsm.c3", payload=payload,
        send_time=4.5, tag="t", round=6,
    )

    def fields(m):
        return (m.src, m.dst, m.channel, m.payload, m.send_time,
                m.tag, m.round)

    via_json = JSON.decode_message(JSON.encode_message(msg))
    via_msgpack = MSGPACK.decode_message(MSGPACK.encode_message(msg))
    assert fields(via_json) == fields(via_msgpack) == fields(msg)


def test_cross_codec_batch_encode_parity():
    msgs = [
        Message(
            src=0, dst=dst, channel="rsm.c0",
            payload=(BATCH, ((0, 0, "v0"), (0, 1, "v1"))),
            send_time=1.0, tag="est", round=2,
        )
        for dst in (1, 2, 3)
    ]
    for codec in (JSON, MSGPACK):
        frames = codec.encode_message_batch(msgs)
        assert len(frames) == len(msgs)
        for frame, msg in zip(frames, msgs):
            out = codec.decode_message(frame)
            assert (out.dst, out.payload) == (msg.dst, msg.payload)
            # Batch frames are decode-equivalent to single encodes even
            # though envelope key order may differ.
            single = codec.decode_message(codec.encode_message(msg))
            assert (single.dst, single.payload) == (out.dst, out.payload)


# --------------------------------------------------------------- svc frames
def _frame_round_trip(codec, payload_dict):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame(codec, payload_dict))
        reader.feed_eof()
        return await read_frame(reader, codec)

    return asyncio.run(run())


@pytest.mark.parametrize("codec", (JSON, MSGPACK), ids=lambda c: c.name)
def test_service_request_frame_parity(codec):
    request = Request(
        rid=7, client="c-1", op="cas", seq=3, key="k",
        value={"v": [1, 2]}, expect=None, codecs=["msgpack", "json"],
    )
    payload = _frame_round_trip(codec, request.to_payload())
    out = Request.from_payload(payload)
    assert (out.rid, out.client, out.op, out.seq) == (7, "c-1", "cas", 3)
    assert out.value == {"v": [1, 2]}
    assert out.codecs == ["msgpack", "json"]


@pytest.mark.parametrize("codec", (JSON, MSGPACK), ids=lambda c: c.name)
def test_service_reply_frame_parity(codec):
    reply = Reply(
        rid=7, status="ok", result={"ok": True, "value": 9},
        leader=2, addr=("127.0.0.1", 4001), codec="msgpack",
    )
    payload = _frame_round_trip(codec, reply.to_payload())
    out = Reply.from_payload(payload)
    assert (out.rid, out.status, out.leader) == (7, "ok", 2)
    assert out.result == {"ok": True, "value": 9}
    assert tuple(out.addr) == ("127.0.0.1", 4001)
    assert out.codec == "msgpack"


# ------------------------------------------------------------- known vectors
#: Spec-canonical (smallest) encodings; a C-extension peer produces the
#: same bytes, which is what makes mixed pure/ext clusters safe.
VECTORS = [
    (None, b"\xc0"),
    (False, b"\xc2"),
    (True, b"\xc3"),
    (5, b"\x05"),
    (-3, b"\xfd"),
    (200, b"\xcc\xc8"),
    (70000, b"\xce\x00\x01\x11\x70"),
    (-200, b"\xd1\xff\x38"),
    (3.25, b"\xcb\x40\x0a\x00\x00\x00\x00\x00\x00"),
    ("HB", b"\xa2HB"),
    (b"\x01\x02", b"\xc4\x02\x01\x02"),
    ([1, 2], b"\x92\x01\x02"),
    ({"a": 1}, b"\x81\xa1a\x01"),
]


@pytest.mark.parametrize("obj,encoded", VECTORS, ids=lambda v: repr(v)[:32])
def test_pure_packer_canonical_bytes(obj, encoded):
    assert mpack.packb(obj) == encoded
    out = mpack.unpackb(encoded)
    assert out == (list(obj) if isinstance(obj, tuple) else obj)


def test_pure_unpacker_rejects_trailing_and_ext():
    with pytest.raises(mpack.MpackError):
        mpack.unpackb(b"\xc0\xc0")  # trailing byte
    with pytest.raises(mpack.MpackError):
        mpack.unpackb(b"\xd4\x01\x00")  # fixext 1
    with pytest.raises(mpack.MpackError):
        mpack.unpackb(b"\xcc")  # truncated uint8


def test_wire_preferences_track_extension():
    prefs = wire_preferences()
    if msgpack_extension_available():
        assert prefs == ["msgpack", "json"]
    else:
        assert prefs == ["json"]


@pytest.mark.skipif(
    not msgpack_extension_available(),
    reason="C msgpack extension not installed; pure fallback in use",
)
@pytest.mark.parametrize("payload", PAYLOADS, ids=repr)
def test_pure_and_ext_are_byte_interchangeable(payload):
    import msgpack  # noqa: F401  (guarded by skipif)

    wire = MSGPACK.encode_payload(payload)
    # The tagged wire form is plain msgpack data: the pure packer must
    # reproduce the ext packer's bytes exactly, and each must decode the
    # other's output.
    via_pure = mpack.unpackb(wire)
    via_ext = msgpack.unpackb(wire, raw=False, strict_map_key=False)
    assert via_pure == via_ext
    assert mpack.packb(via_pure) == msgpack.packb(
        via_ext, use_bin_type=True
    )
