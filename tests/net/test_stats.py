"""The UDP node-introspection endpoint (``repro node --stats-addr``)."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    LocalCluster,
    StatsEndpoint,
    attach_standard_stack,
    fetch_stats,
    parse_stats_addr,
)
from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.metrics import register_metric


def test_parse_stats_addr_accepts_the_three_spellings():
    assert parse_stats_addr("0.0.0.0:9400") == ("0.0.0.0", 9400)
    assert parse_stats_addr(":9400") == ("127.0.0.1", 9400)
    assert parse_stats_addr("9400") == ("127.0.0.1", 9400)


def test_parse_stats_addr_rejects_garbage():
    for bad in ("", "host:", "host:port", "1.2.3.4"):
        with pytest.raises(ConfigurationError):
            parse_stats_addr(bad)


def test_endpoint_serves_the_registry_over_udp():
    async def scenario():
        registry = MetricsRegistry()
        registry.inc("messages_sent_total", amount=3, channel="fd")
        endpoint = StatsEndpoint(registry)
        address = await endpoint.bind()
        try:
            text = await fetch_stats(address)
        finally:
            endpoint.close()
        return endpoint, text

    endpoint, text = asyncio.run(scenario())
    assert 'messages_sent_total{channel="fd"} 3' in text
    assert "# TYPE messages_sent_total counter" in text
    assert endpoint.requests_served == 1


def test_endpoint_runs_samplers_before_each_render():
    async def scenario():
        registry = MetricsRegistry()
        ticks = []

        def sampler(reg):
            ticks.append(1)
            reg.set("transport_frames_sent", len(ticks))

        endpoint = StatsEndpoint(registry, samplers=[sampler])
        address = await endpoint.bind()
        try:
            first = await fetch_stats(address)
            second = await fetch_stats(address)
        finally:
            endpoint.close()
        return first, second

    first, second = asyncio.run(scenario())
    assert "transport_frames_sent 1" in first
    assert "transport_frames_sent 2" in second


def test_closed_endpoint_reads_as_node_down():
    async def scenario():
        endpoint = StatsEndpoint(MetricsRegistry())
        address = await endpoint.bind()
        endpoint.close()
        endpoint.close()  # idempotent
        # Silence (remote death) or ICMP port-unreachable (local kill):
        # both spell "node down" to a stats client.
        with pytest.raises((asyncio.TimeoutError, ConnectionRefusedError)):
            await fetch_stats(address, timeout=0.2)

    asyncio.run(scenario())


def test_double_bind_is_rejected():
    async def scenario():
        endpoint = StatsEndpoint(MetricsRegistry())
        await endpoint.bind()
        try:
            with pytest.raises(ConfigurationError):
                await endpoint.bind()
        finally:
            endpoint.close()

    asyncio.run(scenario())


def test_histograms_expose_quantile_summary_lines():
    """Histogram series render as Prometheus summaries: a
    ``{quantile="0.5"}`` / ``{quantile="0.95"}`` estimate per label set,
    ahead of the ``_count``/``_sum``/``_min``/``_max`` aggregates."""
    register_metric("test_stats_latency_seconds", kind="histogram")
    registry = MetricsRegistry()
    for ms in range(1, 101):  # 1ms .. 100ms, uniformly
        registry.observe("test_stats_latency_seconds", ms / 1000.0)
    text = render_prometheus(registry)
    assert "# TYPE test_stats_latency_seconds summary" in text
    lines = {
        line.split(" ")[0]: float(line.split(" ")[1])
        for line in text.splitlines()
        if line.startswith("test_stats_latency_seconds{")
    }
    p50 = lines['test_stats_latency_seconds{quantile="0.5"}']
    p95 = lines['test_stats_latency_seconds{quantile="0.95"}']
    # Log-spaced buckets give estimates, not exact order statistics:
    # accept the containing power-of-two bucket around the true value.
    assert 0.025 <= p50 <= 0.1
    assert 0.05 <= p95 <= 0.1
    assert p50 <= p95
    assert "test_stats_latency_seconds_count 100" in text


def test_quantile_lines_keep_series_labels_and_skip_empty_series():
    register_metric(
        "test_stats_stage_seconds", kind="histogram", labels=("stage",)
    )
    registry = MetricsRegistry()
    registry.observe("test_stats_stage_seconds", 0.004, stage="apply")
    text = render_prometheus(registry)
    assert 'test_stats_stage_seconds{stage="apply",quantile="0.5"}' in text
    assert 'test_stats_stage_seconds{stage="apply",quantile="0.95"}' in text
    # A touched-but-empty registry renders no quantile lines at all.
    empty = render_prometheus(MetricsRegistry())
    assert "quantile=" not in empty


def test_live_cluster_host_registry_is_exposable():
    """End to end on a running loopback cluster: the exposition carries
    the instrumented record sites' series."""

    async def scenario():
        cluster = LocalCluster(n=3, transport="loopback", seed=0)
        attach_standard_stack(
            cluster, period=0.05,
            initial_timeout=0.12, timeout_increment=0.05,
        )
        await cluster.start()
        await cluster.run(0.5)
        host = cluster.host(0)
        endpoint = StatsEndpoint(
            host.metrics, samplers=host.world.metrics_samplers
        )
        address = await endpoint.bind()
        try:
            text = await fetch_stats(address)
        finally:
            endpoint.close()
            await cluster.stop()
        return text

    text = asyncio.run(scenario())
    assert 'messages_sent_total{channel="fd.suspects"}' in text
    assert "transport_frames_sent" in text
