"""Sim ↔ net parity: the same scripted scenario on both substrates.

The scenario (n = 3, every link a fixed 1.0-time-unit delay, leader p0
killed at t = 2.0, all three proposals in flight) runs once on the
discrete-event simulator and once on the runtime stack — codec, loopback
transport, fault proxy, NodeHost — driven by a virtual clock.  Both must
converge ◇C to the same trusted leader and suspect set and decide the same
consensus value; the runtime run must also be bit-for-bit reproducible.
"""

import pytest

from repro.analysis import check_consensus, extract_outcome
from repro.broadcast.reliable import ReliableBroadcast
from repro.consensus.ec_consensus import ECConsensus
from repro.fd.eventually_consistent import CombinedDetector
from repro.fd.leader_based import LeaderBasedOmega
from repro.fd.ring import RingDetector
from repro.net import LocalCluster, attach_standard_stack
from repro.sim import FixedDelay, ReliableLink, World
from repro.transform.c_to_p import CToPTransformation

PERIOD, TIMEOUT0, INCREMENT = 5.0, 12.0, 5.0
KILL_AT, HORIZON = 2.0, 400.0


def run_sim(seed=0):
    world = World(n=3, seed=seed, default_link=ReliableLink(FixedDelay(1.0)))
    detectors, protocols = [], []
    for pid in world.pids:
        omega = world.attach(pid, LeaderBasedOmega(
            period=PERIOD, initial_timeout=TIMEOUT0,
            timeout_increment=INCREMENT, channel="fd.omega"))
        ring = world.attach(pid, RingDetector(
            period=PERIOD, initial_timeout=TIMEOUT0,
            timeout_increment=INCREMENT, channel="fd.suspects"))
        combined = world.attach(
            pid, CombinedDetector(omega, ring, channel="fd"))
        world.attach(pid, CToPTransformation(
            combined, send_period=PERIOD, alive_period=PERIOD,
            initial_timeout=TIMEOUT0, timeout_increment=INCREMENT,
            channel="fdp"))
        rb = world.attach(pid, ReliableBroadcast(channel="consensus.rb"))
        protocols.append(world.attach(
            pid, ECConsensus(combined, rb, round_step=PERIOD / 5.0)))
        detectors.append(combined)
    world.start()
    for p in protocols:
        p.propose(f"v{p.pid}")
    world.schedule_crash(0, KILL_AT)
    world.run(until=HORIZON)
    return world.trace, detectors, protocols, world.correct_pids


def run_net(seed=0):
    cluster = LocalCluster(
        n=3, transport="loopback", clock="virtual", seed=seed,
    )
    # Every link a fixed 1.0-unit delay: a zero-loss "storm" puts the
    # delay model on every pair of the always-on fault plan.
    cluster.plan.storm(0.0, delay=FixedDelay(1.0))
    stacks = attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=TIMEOUT0, timeout_increment=INCREMENT,
    )
    cluster.start_virtual()
    for p in stacks["consensus"]:
        p.propose(f"v{p.pid}")
    cluster.schedule_kill(0, KILL_AT)
    cluster.run_virtual(until=HORIZON)
    return cluster, stacks


@pytest.fixture(scope="module")
def sim_run():
    return run_sim()


@pytest.fixture(scope="module")
def net_run():
    return run_net()


def test_both_substrates_decide_the_same_value(sim_run, net_run):
    sim_trace, _, _, sim_correct = sim_run
    cluster, _ = net_run
    sim_out = extract_outcome(sim_trace, "ec")
    net_out = extract_outcome(cluster.trace, "ec")
    assert sim_out.decisions == net_out.decisions == {1: "v1", 2: "v1"}
    assert all(check_consensus(sim_out, sim_correct).values())
    assert all(check_consensus(net_out, cluster.correct_pids).values())


def test_both_substrates_converge_identically(sim_run, net_run):
    _, sim_detectors, _, _ = sim_run
    _, stacks = net_run
    net_detectors = stacks["fd"]
    for survivor in (1, 2):
        assert sim_detectors[survivor].trusted() == 1
        assert net_detectors[survivor].trusted() == 1
        assert sim_detectors[survivor].suspected() == frozenset({0})
        assert net_detectors[survivor].suspected() == frozenset({0})


def test_runtime_path_is_bit_for_bit_reproducible(net_run):
    first, _ = net_run
    second, _ = run_net()
    key = lambda ev: (ev.time, ev.kind, ev.pid, sorted(ev.data.items()))
    assert [key(ev) for ev in second.trace.events] == \
           [key(ev) for ev in first.trace.events]


def run_net_jittered(seed):
    """Same scenario but with randomized link delays from a seeded plan."""
    from repro.sim.delays import UniformDelay

    cluster = LocalCluster(
        n=3, transport="loopback", clock="virtual", seed=seed,
    )
    # The built-in plan is seeded with the cluster seed, so the jittered
    # delay draws are part of the same deterministic-replay contract.
    cluster.plan.storm(0.0, delay=UniformDelay(0.5, 1.5))
    stacks = attach_standard_stack(
        cluster, period=PERIOD,
        initial_timeout=TIMEOUT0, timeout_increment=INCREMENT,
    )
    cluster.start_virtual()
    for p in stacks["consensus"]:
        p.propose(f"v{p.pid}")
    cluster.schedule_kill(0, KILL_AT)
    cluster.run_virtual(until=HORIZON)
    return cluster


def test_randomized_delays_are_seed_deterministic():
    key = lambda ev: (ev.time, ev.kind, ev.pid, sorted(ev.data.items()))
    base = run_net_jittered(seed=0)
    again = run_net_jittered(seed=0)
    other = run_net_jittered(seed=99)
    assert [key(e) for e in base.trace.events] == \
           [key(e) for e in again.trace.events]
    assert [key(e) for e in base.trace.events] != \
           [key(e) for e in other.trace.events]
    for cluster in (base, other):
        out = extract_outcome(cluster.trace, "ec")
        assert all(check_consensus(out, cluster.correct_pids).values())
        assert out.decisions  # survivors reached a decision
