"""Clocks and the NodeHost adapter: the component API over live parts."""

import asyncio

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net import (
    AsyncioClock,
    JsonCodec,
    LoopbackHub,
    LoopbackTransport,
    NodeHost,
    VirtualClock,
)
from repro.sim.component import Component
from repro.sim.message import Message


class Echo(Component):
    """Replies "pong" to every "ping"; records everything it hears."""

    channel = "echo"

    def __init__(self):
        super().__init__()
        self.heard = []

    def on_message(self, src, payload):
        self.heard.append((src, payload))
        if payload == "ping":
            self.send(src, "pong")


def _pair(clock):
    """Two loopback-connected hosts sharing *clock*."""
    hub = LoopbackHub(clock)
    hosts = []
    for pid in range(2):
        transport = LoopbackTransport(pid, hub)
        host = NodeHost(pid, 2, transport, clock=clock)
        transport.bind()
        hosts.append(host)
    addresses = {h.pid: h.transport.local_address for h in hosts}
    for h in hosts:
        h.transport.set_peers(addresses)
    return hosts


# ---------------------------------------------------------------- VirtualClock
def test_virtual_clock_hosts_echo_deterministically():
    clock = VirtualClock()
    hosts = _pair(clock)
    echoes = [h.attach(Echo()) for h in hosts]
    for h in hosts:
        h.start()
    echoes[0].send(1, "ping")
    clock.run(until=10.0)
    assert echoes[1].heard == [(0, "ping")]
    assert echoes[0].heard == [(1, "pong")]


def test_virtual_clock_self_send_loops_back():
    clock = VirtualClock()
    hosts = _pair(clock)
    echoes = [h.attach(Echo()) for h in hosts]
    for h in hosts:
        h.start()
    echoes[0].send(0, "hello-me")
    clock.run(until=1.0)
    assert echoes[0].heard == [(0, "hello-me")]
    # Self-sends never hit the transport, exactly like the simulator.
    assert hosts[0].transport.frames_sent == 0
    assert hosts[0].world.network.sent_network == 0
    assert hosts[0].world.network.sent_total == 1


def test_crashed_host_counts_sends_as_noops():
    clock = VirtualClock()
    hosts = _pair(clock)
    echoes = [h.attach(Echo()) for h in hosts]
    for h in hosts:
        h.start()
    hosts[0].crash()
    assert hosts[0].crashed
    echoes[0].send(1, "ping")  # component helper is a no-op after crash
    clock.run(until=10.0)
    assert echoes[1].heard == []


def test_undecodable_frame_is_counted_not_fatal():
    clock = VirtualClock()
    hosts = _pair(clock)
    echoes = [h.attach(Echo()) for h in hosts]
    for h in hosts:
        h.start()
    hosts[0].transport.send(1, b"\xffnot-a-frame")
    clock.run(until=1.0)
    assert hosts[1].undecodable_frames == 1
    assert echoes[1].heard == []
    drops = [ev for ev in hosts[1].trace.events if ev.kind == "drop"]
    assert drops and drops[0].get("reason") == "undecodable"


def test_misrouted_frame_is_counted_and_ignored():
    clock = VirtualClock()
    hosts = _pair(clock)
    for h in hosts:
        h.attach(Echo())
        h.start()
    stray = Message(src=0, dst=5, channel="echo", payload="x", send_time=0.0)
    hosts[0].transport.send(1, JsonCodec().encode_message(stray))
    clock.run(until=1.0)
    assert hosts[1].misrouted_frames == 1


def test_runtime_world_rejects_oracle_surface():
    clock = VirtualClock()
    (host, _) = _pair(clock)
    with pytest.raises(ConfigurationError):
        host.world.processes


def test_host_validates_pid_and_transport_pid():
    hub = LoopbackHub(VirtualClock())
    with pytest.raises(ConfigurationError):
        NodeHost(5, 3, LoopbackTransport(5, hub))
    with pytest.raises(ConfigurationError):
        NodeHost(0, 3, LoopbackTransport(1, hub))


# ---------------------------------------------------------------- AsyncioClock
def test_asyncio_clock_timers_and_rebase():
    async def scenario():
        clock = AsyncioClock()
        clock.rebase()
        fired = []
        clock.schedule(0.01, fired.append, "a")
        cancelled = clock.schedule(0.01, fired.append, "never")
        cancelled.cancel()
        clock.schedule_at(clock.now + 0.02, fired.append, "b")
        with pytest.raises(SimulationError):
            clock.schedule(-1.0, fired.append, "x")
        with pytest.raises(SimulationError):
            clock.schedule_at(clock.now - 1.0, fired.append, "x")
        await asyncio.sleep(0.05)
        assert fired == ["a", "b"]
        assert clock.now >= 0.05

    asyncio.run(scenario())


def test_asyncio_clock_hosts_echo():
    async def scenario():
        clock = AsyncioClock()
        hosts = _pair(clock)
        echoes = [h.attach(Echo()) for h in hosts]
        clock.rebase()
        for h in hosts:
            h.start()
        echoes[0].send(1, "ping")
        await asyncio.sleep(0.05)
        assert echoes[1].heard == [(0, "ping")]
        assert echoes[0].heard == [(1, "pong")]

    asyncio.run(scenario())
