"""Socket transports on localhost: framing, addressing, resilience."""

import asyncio

import pytest

from repro.net import TCPTransport, UDPTransport


async def _linked(factory, n=2):
    """Bind *n* transports and share the address book."""
    transports = [factory(pid) for pid in range(n)]
    for t in transports:
        await t.bind()
    addresses = {t.pid: t.local_address for t in transports}
    for t in transports:
        t.set_peers(addresses)
    return transports


async def _drain(predicate, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.005)
    return predicate()


@pytest.mark.parametrize("factory", [UDPTransport, TCPTransport],
                         ids=["udp", "tcp"])
def test_frames_cross_localhost_both_ways(factory):
    async def scenario():
        inboxes = {0: [], 1: []}
        a, b = await _linked(factory)
        a.set_receiver(inboxes[0].append)
        b.set_receiver(inboxes[1].append)
        payloads = [b"frame-%d" % i for i in range(20)]
        for p in payloads:
            a.send(1, p)
        b.send(0, b"reply")
        assert await _drain(
            lambda: len(inboxes[1]) == 20 and len(inboxes[0]) == 1)
        assert inboxes[1] == payloads  # FIFO per sender on localhost
        assert inboxes[0] == [b"reply"]
        assert a.frames_sent == 20 and a.bytes_sent == sum(map(len, payloads))
        assert b.frames_received == 20
        for t in (a, b):
            await t.close()

    asyncio.run(scenario())


def test_udp_oversize_datagram_is_dropped_not_fatal():
    async def scenario():
        inbox = []
        a, b = await _linked(UDPTransport)
        b.set_receiver(inbox.append)
        a.send(1, b"x" * (UDPTransport.MAX_DATAGRAM + 1))
        a.send(1, b"small")
        assert await _drain(lambda: inbox == [b"small"])
        assert a.oversize_drops == 1
        for t in (a, b):
            await t.close()

    asyncio.run(scenario())


def test_tcp_survives_peer_restart():
    async def scenario():
        inbox = []
        a, b = await _linked(TCPTransport)
        b.set_receiver(inbox.append)
        a.send(1, b"before")
        assert await _drain(lambda: inbox == [b"before"])
        # Replace b with a fresh transport on a new port: a's writer task
        # must reconnect via backoff once it learns the new address.
        await b.close()
        b2 = TCPTransport(1)
        await b2.bind()
        b2.set_receiver(inbox.append)
        addresses = {0: a.local_address, 1: b2.local_address}
        a.set_peers(addresses)
        b2.set_peers(addresses)
        # A frame written into the dying connection's kernel buffer can be
        # lost — TCP under churn is fair-lossy by design — so resend until
        # heard, exactly as the stubborn protocols do.
        for _ in range(200):
            a.send(1, b"after-restart")
            if b"after-restart" in inbox:
                break
            await asyncio.sleep(0.02)
        assert b"after-restart" in inbox
        assert inbox[0] == b"before"
        await a.close()
        await b2.close()

    asyncio.run(scenario())


def test_tcp_sheds_oldest_when_peer_unreachable():
    async def scenario():
        a = TCPTransport(0, queue_limit=4)
        await a.bind()
        # Peer 1 has an address nobody listens on: frames queue, never drain.
        a.set_peers({0: a.local_address, 1: ("127.0.0.1", 1)})
        for i in range(10):
            a.send(1, b"frame-%d" % i)
        assert a.shed_frames == 6  # ten offered, queue keeps newest four
        assert a._queues[1][0] == b"frame-6"
        await a.close()

    asyncio.run(scenario())


def test_tcp_bounded_retry_declares_peer_unreachable():
    async def scenario():
        incidents = []
        a = TCPTransport(0, backoff_initial=0.01, max_connect_attempts=3)
        await a.bind()
        a.set_observer(lambda event, **f: incidents.append((event, f)))
        # A genuinely dead port: bind a listener, note the address, close it.
        probe = TCPTransport(1)
        await probe.bind()
        dead = probe.local_address
        await probe.close()
        a.set_peers({0: a.local_address, 1: dead})
        for i in range(5):
            a.send(1, b"frame-%d" % i)
        assert await _drain(lambda: a.unreachable_peers >= 1)
        assert a.dropped_frames == 5  # whole queue flushed, not shed
        assert not a._queues[1]
        assert incidents[0] == (
            "net.peer_unreachable", {"peer": 1, "attempts": 3, "dropped": 5}
        )
        # Fresh traffic re-arms the attempt budget: the cycle repeats
        # instead of the peer staying silently blacklisted.
        a.send(1, b"again")
        assert await _drain(lambda: a.unreachable_peers >= 2)
        assert a.dropped_frames == 6
        await a.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("factory", [UDPTransport, TCPTransport],
                         ids=["udp", "tcp"])
def test_send_after_close_is_noop(factory):
    async def scenario():
        a, b = await _linked(factory)
        await a.close()
        a.send(1, b"ghost")  # must not raise
        assert a.frames_sent == 0
        await b.close()

    asyncio.run(scenario())
