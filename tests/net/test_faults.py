"""Fault injection: the live twin of the simulator's link/partition model."""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    FaultPlan,
    FaultyTransport,
    LoopbackHub,
    LoopbackTransport,
    VirtualClock,
)
from repro.sim.delays import FixedDelay


def _wired(n, plan, clock):
    """n loopback endpoints wrapped in FaultyTransports, plus inboxes."""
    hub = LoopbackHub(clock)
    inboxes = {pid: [] for pid in range(n)}
    wires = []
    for pid in range(n):
        real = LoopbackTransport(pid, hub)
        wire = FaultyTransport(real, plan, clock)
        wire.set_receiver(inboxes[pid].append)
        wire.bind()
        wires.append(wire)
    addresses = {w.pid: w.local_address for w in wires}
    for w in wires:
        w.set_peers(addresses)
    return wires, inboxes


# -------------------------------------------------------------- plan verdicts
def test_default_plan_passes_everything_through():
    plan = FaultPlan(3)
    assert plan.plan(0, 1) == 0.0
    assert plan.dropped == 0 and plan.delayed == 0


def test_partition_cuts_cross_group_pairs_both_ways():
    plan = FaultPlan(4)
    plan.partition([0, 1])  # implicit second group {2, 3}
    assert plan.partitioned
    assert plan.plan(0, 1) == 0.0 and plan.plan(2, 3) == 0.0
    assert plan.plan(0, 2) is None and plan.plan(2, 0) is None
    assert plan.plan(1, 3) is None
    plan.heal()
    assert not plan.partitioned
    assert plan.plan(0, 2) == 0.0


def test_isolate_is_a_singleton_partition():
    plan = FaultPlan(3)
    plan.isolate(2)
    assert plan.plan(2, 0) is None and plan.plan(0, 2) is None
    assert plan.plan(0, 1) == 0.0


def test_degrade_and_restore_are_per_directed_pair():
    plan = FaultPlan(3, seed=1)
    plan.degrade(0, 1, loss_prob=0.999999, delay=FixedDelay(2.5))
    # Reverse direction untouched.
    assert plan.plan(1, 0) == 0.0
    verdicts = [plan.plan(0, 1) for _ in range(50)]
    assert all(v is None for v in verdicts)  # loss ~1 drops everything
    plan.restore(0, 1)
    assert plan.plan(0, 1) == 0.0


def test_delay_model_verdicts_count_delays():
    plan = FaultPlan(2, delay=FixedDelay(1.5))
    assert plan.plan(0, 1) == 1.5
    assert plan.delayed == 1


def test_plan_validates_inputs():
    with pytest.raises(ConfigurationError, match=r"outside \[0, 1\]"):
        FaultPlan(3, loss_prob=1.5)
    plan = FaultPlan(3)
    with pytest.raises(ConfigurationError):
        plan.partition([0, 7])
    with pytest.raises(ConfigurationError):
        plan.partition([0, 1], [1, 2])
    with pytest.raises(ConfigurationError, match=r"outside \[0, 1\]"):
        plan.degrade(0, 1, loss_prob=-0.1)
    with pytest.raises(ConfigurationError, match=r"outside \[0, 1\]"):
        plan.storm(1.2)


def test_loss_prob_one_is_legal_everywhere():
    # The boundary is inclusive on BOTH ends for every entry point — the
    # constructor used to reject what degrade() accepted.
    plan = FaultPlan(2, loss_prob=1.0)
    assert all(plan.plan(0, 1) is None for _ in range(10))
    plan = FaultPlan(2)
    plan.degrade(0, 1, loss_prob=1.0)
    assert plan.plan(0, 1) is None
    plan.restore(0, 1)
    plan.storm(1.0)
    assert plan.plan(0, 1) is None and plan.plan(1, 0) is None


def test_stall_silences_both_directions():
    plan = FaultPlan(3)
    plan.stall(1)
    assert plan.stalled == frozenset({1})
    assert plan.plan(1, 0) is None and plan.plan(0, 1) is None
    assert plan.plan(0, 2) == 0.0  # bystanders talk normally
    plan.resume(1)
    assert plan.stalled == frozenset()
    assert plan.plan(1, 0) == 0.0


def test_storm_floors_every_pair_until_calm():
    plan = FaultPlan(3, seed=2)
    plan.storm(1.0)
    assert plan.storming
    assert plan.plan(0, 1) is None and plan.plan(2, 0) is None
    plan.calm()
    assert not plan.storming
    assert plan.plan(0, 1) == 0.0


def test_active_flag_tracks_every_fault_family():
    # The FaultyTransport fast path: an idle plan must read as inactive,
    # and every verb pair must restore that state when undone.
    plan = FaultPlan(3)
    assert not plan.active
    for arm, undo in (
        (lambda: plan.partition([0]), plan.heal),
        (lambda: plan.stall(1), lambda: plan.resume(1)),
        (lambda: plan.storm(0.5), plan.calm),
        (lambda: plan.degrade(0, 1, loss_prob=0.5),
         lambda: plan.restore(0, 1)),
    ):
        arm()
        assert plan.active
        undo()
        assert not plan.active


# --------------------------------------------------- proxy over the transport
def test_faulty_transport_drops_across_partition():
    clock = VirtualClock()
    plan = FaultPlan(2)
    wires, inboxes = _wired(2, plan, clock)
    plan.partition([0])
    wires[0].send(1, b"lost")
    plan.heal()
    wires[0].send(1, b"heard")
    clock.run(until=1.0)
    assert inboxes[1] == [b"heard"]
    assert plan.dropped == 1


def test_faulty_transport_realizes_delay_through_the_clock():
    clock = VirtualClock()
    plan = FaultPlan(2, delay=FixedDelay(3.0))
    wires, inboxes = _wired(2, plan, clock)
    wires[0].send(1, b"slow")
    clock.run(until=2.9)
    assert inboxes[1] == []  # still in flight at t < 3
    clock.run(until=3.1)
    assert inboxes[1] == [b"slow"]


def test_loss_is_deterministic_under_a_seed():
    def outcomes(seed):
        clock = VirtualClock()
        plan = FaultPlan(2, seed=seed, loss_prob=0.5)
        wires, inboxes = _wired(2, plan, clock)
        for i in range(30):
            wires[0].send(1, b"%d" % i)
        clock.run(until=1.0)
        return list(inboxes[1])

    assert outcomes(3) == outcomes(3)
    assert outcomes(3) != outcomes(4)  # and the seed actually matters
