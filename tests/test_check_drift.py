"""Benchmark drift checker (``benchmarks/check_drift.py``).

The checker is a script, not a package module; load it by path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_drift.py"
_spec = importlib.util.spec_from_file_location("check_drift", _SCRIPT)
check_drift = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_drift)


def _table(rows, headers=("protocol", "messages", "s to decide after kill")):
    return {
        "experiment": "x",
        "title": "X",
        "headers": list(headers),
        "rows": [list(r) for r in rows],
        "note": "",
    }


def _write_dirs(tmp_path, fresh_rows, base_rows, **kw):
    fresh = tmp_path / "fresh"
    base = tmp_path / "base"
    fresh.mkdir()
    base.mkdir()
    (fresh / "BENCH_x.json").write_text(json.dumps(_table(fresh_rows, **kw)))
    (base / "BENCH_x.json").write_text(json.dumps(_table(base_rows, **kw)))
    return fresh, base


def test_identical_tables_pass(tmp_path):
    fresh, base = _write_dirs(
        tmp_path, [["ec", 100, "0.10"]], [["ec", 100, "0.10"]]
    )
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 0 and messages == []


def test_within_tolerance_passes(tmp_path):
    fresh, base = _write_dirs(
        tmp_path, [["ec", 120, "0.10"]], [["ec", 100, "0.10"]]
    )
    code, _ = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 0


def test_numeric_drift_beyond_tolerance_fails(tmp_path):
    fresh, base = _write_dirs(
        tmp_path, [["ec", 250, "0.10"]], [["ec", 100, "0.10"]]
    )
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 1
    assert any("messages" in m for m in messages)


def test_wall_latency_column_is_skipped(tmp_path):
    # 50x drift in the "s to ..." column must not fail the check.
    fresh, base = _write_dirs(
        tmp_path, [["ec", 100, "5.0"]], [["ec", 100, "0.10"]]
    )
    code, _ = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 0


def test_throughput_table_skips_every_volatile_column(tmp_path):
    # The BENCH_N3 throughput table names all its host-dependent columns
    # with "wall"/"latency" so only topology and verdicts are compared.
    headers = (
        "transport", "n", "clients", "acked/s (wall)",
        "slots/s (wall)", "mean batch (wall)",
        "p50 latency ms", "p95 latency ms", "p99 latency ms",
        "errors", "verdicts",
    )
    fresh, base = _write_dirs(
        tmp_path,
        [["loopback", 3, 10, 400.0, 90.0, 55.0, 5.0, 9.0, 12.0, 0, "ok"]],
        [["loopback", 3, 10, 60.0, 15.0, 1.0, 280.0, 700.0, 900.0, 0, "ok"]],
        headers=headers,
    )
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 0, messages
    # ...while a verdict flip or an error count still fails.
    (tmp_path / "bad").mkdir()
    fresh, base = _write_dirs(
        tmp_path / "bad",
        [["loopback", 3, 10, 60.0, 15.0, 1.0, 280.0, 700.0, 900.0, 9,
          "VIOLATED"]],
        [["loopback", 3, 10, 60.0, 15.0, 1.0, 280.0, 700.0, 900.0, 0, "ok"]],
        headers=headers,
    )
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 1
    assert any("verdicts" in m for m in messages)


def test_string_cell_change_fails(tmp_path):
    fresh, base = _write_dirs(
        tmp_path,
        [["ec", 100, "0.1", "no"]],
        [["ec", 100, "0.1", "yes"]],
        headers=("protocol", "messages", "s to decide after kill", "decided"),
    )
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 1
    assert any("decided" in m for m in messages)


def test_vanished_row_fails(tmp_path):
    fresh, base = _write_dirs(
        tmp_path, [["ec", 100, "0.1"]], [["ec", 100, "0.1"], ["ct", 80, "0.1"]]
    )
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 1
    assert any("vanished" in m for m in messages)


def test_header_change_is_reported(tmp_path):
    fresh, base = _write_dirs(tmp_path, [["ec", 100, "0.1"]], [["ec", 100, "0.1"]])
    table = _table([["ec", 100]], headers=("protocol", "messages"))
    (tmp_path / "fresh" / "BENCH_x.json").write_text(json.dumps(table))
    code, messages = check_drift.run(fresh, base, tolerance=0.35)
    assert code == 1
    assert any("headers changed" in m for m in messages)


def test_missing_everything_is_config_error(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(check_drift.DriftConfigError):
        check_drift.run(empty, None, tolerance=0.35)


def test_malformed_json_is_config_error(tmp_path):
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    (fresh / "BENCH_x.json").write_text("{not json")
    with pytest.raises(check_drift.DriftConfigError):
        check_drift.run(fresh, None, tolerance=0.35)


def test_main_exit_codes(tmp_path, capsys):
    fresh, base = _write_dirs(
        tmp_path, [["ec", 100, "0.1"]], [["ec", 100, "0.1"]]
    )
    argv = ["--results", str(fresh), "--baseline", str(base)]
    assert check_drift.main(argv) == 0
    assert "no drift" in capsys.readouterr().out
    assert check_drift.main(["--baseline", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_committed_baselines_match_head():
    # The real thing: the checked-in results must match git HEAD exactly
    # (the working tree is the committed tree in CI).
    code, messages = check_drift.run(
        check_drift.RESULTS_DIR, None, tolerance=0.35
    )
    assert code == 0, messages
