"""Legacy setup shim.

The metadata lives in ``pyproject.toml``; this file exists so that editable
installs work on environments without the ``wheel`` package (offline boxes
where the PEP-517 editable path cannot build a wheel).
"""

from setuptools import setup

setup()
